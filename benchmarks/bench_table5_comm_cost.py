"""Table 5 — communication cost: Centralized vs None vs CR migration.

Expected shape: None ships nothing; CR ships collapsed weights only
(tens of bytes per migration); the centralized approach ships every raw
reading (gzip-compressed) and costs orders of magnitude more. The gap
widens with trace volume — the paper's 4-hour, 0.32 M-item run shows
~3 orders of magnitude; this scaled run shows the same ordering with a
smaller ratio, plus the per-reading/per-migration unit costs that the
extrapolation rests on.
"""

from _common import emit_table

from repro.core.service import ServiceConfig
from repro.distributed.centralized import CentralizedDeployment
from repro.distributed.coordinator import DistributedDeployment
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.warehouse import WarehouseParams

READ_RATES = [0.6, 0.7, 0.8, 0.9]


def run_sweep():
    config = ServiceConfig(
        run_interval=300, recent_history=600, truncation="cr", emit_events=False
    )
    rows = []
    for rr in READ_RATES:
        result = simulate(
            SupplyChainParams(
                n_warehouses=3,
                horizon=2400,
                items_per_case=8,
                cases_per_pallet=4,
                injection_period=300,
                main_read_rate=rr,
                warehouse=WarehouseParams(shelf_dwell_mean=400, shelf_dwell_jitter=50),
                seed=50,
            )
        )
        central = CentralizedDeployment(result, config)
        central.run()
        none_dep = DistributedDeployment(result, config, strategy="none")
        none_dep.run()
        cr_dep = DistributedDeployment(result, config, strategy="collapsed")
        cr_dep.run()
        rows.append(
            [
                rr,
                f"{central.communication_bytes():,}",
                f"{none_dep.communication_bytes():,}",
                f"{cr_dep.communication_bytes():,}",
                f"{central.communication_bytes() / max(cr_dep.communication_bytes(), 1):.1f}x",
            ]
        )
    return rows


def test_table5_comm_cost(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Table 5 communication cost (bytes)",
        ["RR", "Centralized", "None", "CR", "Centralized/CR"],
        rows,
    )
    for row in rows:
        central = int(row[1].replace(",", ""))
        none = int(row[2].replace(",", ""))
        cr = int(row[3].replace(",", ""))
        assert none == 0
        assert cr < central / 3  # CR is a small fraction of centralized
