"""Distributed supply chain: state migration across three warehouses.

Pallets flow through a chain of three warehouses. Each site runs its
own inference; when objects reach the next site, their collapsed
inference state (a few candidate weights — not raw readings) follows
them via the Object Naming Service. The example compares:

* ``none``       — no state transfer (each site starts cold),
* ``collapsed``  — the paper's CR/collapsed-state migration,
* ``centralized``— every raw reading shipped (gzip) to one server.

The deployment runs on the event-driven :mod:`repro.runtime`: sites are
message-reactive nodes, and migrations travel as one centroid-compressed
bundle per (src, dst) pair per interval. The per-link transport ledger
printed at the end is the site-to-site traffic breakdown.

Run:  python examples/distributed_supply_chain.py
"""

from repro.core.service import ServiceConfig
from repro.distributed.centralized import CentralizedDeployment
from repro.distributed.coordinator import DistributedDeployment
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.warehouse import WarehouseParams


def main() -> None:
    result = simulate(
        SupplyChainParams(
            n_warehouses=3,
            horizon=2400,
            items_per_case=8,
            cases_per_pallet=4,
            injection_period=300,
            main_read_rate=0.8,
            warehouse=WarehouseParams(shelf_dwell_mean=400, shelf_dwell_jitter=50),
            seed=21,
        )
    )
    print("readings per site:", [f"{len(t):,}" for t in result.traces])
    config = ServiceConfig(run_interval=300, recent_history=600,
                           truncation="cr", emit_events=False)

    deployments = {}
    for strategy in ("none", "collapsed"):
        deployment = deployments[strategy] = DistributedDeployment(
            result, config, strategy=strategy
        )
        deployment.run()
        print(f"\nstrategy={strategy!r}:")
        print(f"  containment error : {deployment.containment_error():.2%}")
        print(f"  bytes on the wire : {deployment.communication_bytes():,}")
        print(f"  migrations        : {len(deployment.migrations)}")
        if deployment.migrations:
            avg = sum(m.bytes_sent for m in deployment.migrations) / len(
                deployment.migrations
            )
            print(f"  avg state size    : {avg:.1f} B/object")

    central = CentralizedDeployment(result, config)
    central.run()
    print("\nstrategy='centralized':")
    print(f"  containment error : {central.containment_error():.2%}")
    print(f"  bytes on the wire : {central.communication_bytes():,} (gzip'd raw readings)")

    # Per-link breakdown of the CR deployment (site -2 is the ONS).
    print("\nper-link traffic (collapsed strategy):")
    for src, dst, msgs, nbytes in deployments["collapsed"].network.per_link_rows():
        print(f"  {src:>2} -> {dst:>2}: {msgs:>4} msgs, {nbytes:>7,} B")


if __name__ == "__main__":
    main()
