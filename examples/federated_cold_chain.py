"""Federated cold-chain monitoring: query state migrates with the goods.

Two sites, one cold chain. Frozen items are exposed (moved out of their
freezer cases) at site 0; midway through the trace every case travels
to site 1. Each site runs its own inference service and its own copy of
Query 2 (temperature exposure, §5.4) over local events × local sensor
readings. When the goods arrive at site 1, the runtime migrates both:

* the objects' collapsed inference state (§4.1), and
* their ``SEQ(A+)`` pattern-automaton state (Appendix B) — so an
  exposure run that *started* at site 0 can still fire at site 1.

Sites run concurrently on worker threads (``ThreadedTransport``); the
result is bit-identical to the deterministic in-process transport.

Run:  python examples/federated_cold_chain.py
"""

from repro.core.service import ServiceConfig
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import Cluster, ThreadedTransport
from repro.workloads.scenarios import cold_chain_scenario


def main() -> None:
    scenario = cold_chain_scenario(
        seed=7,
        n_sites=2,
        n_freezer_cases=6,
        n_room_cases=3,
        items_per_case=6,
        n_exposures=4,
        horizon=1500,
        site_leave_time=700,
    )
    exposed = {tag for tag, _, back in scenario.exposures if back is None}
    print("sites:", len(scenario.traces), " exposed items:", sorted(map(str, exposed)))

    config = ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation="cr",
        emit_events=True,
        event_period=5,
    )
    with ThreadedTransport() as transport:
        cluster = Cluster(scenario.traces, config, transport=transport)
        cluster.add_query(
            "q2", lambda site: TemperatureExposureQuery(scenario.catalog, exposure_duration=400)
        )
        cluster.set_sensor_streams(
            {site: scenario.sensor_stream(site) for site in range(len(scenario.traces))}
        )
        cluster.run(scenario.horizon)

        for node in cluster.nodes:
            q2 = node.queries["q2"]
            print(f"\nsite {node.site} alerts:")
            for alert in q2.alerts:
                print(
                    f"  {alert.key} exposed {alert.start_time}..{alert.end_time} "
                    f"({len(alert.values)} readings)"
                )

        ledger = cluster.network
        print("\nwire traffic by kind:")
        for kind in sorted(ledger.bytes_by_kind):
            print(
                f"  {kind:<15} {ledger.messages_by_kind[kind]:>4} msgs "
                f"{ledger.bytes_by_kind[kind]:>7,} B"
            )
        migrated = [m for m in cluster.migrations if m.tag in exposed]
        print(f"\nexposed-item state hand-offs: {len(migrated)}")
        print(f"containment error: {cluster.containment_error(scenario.truth):.2%}")


if __name__ == "__main__":
    main()
