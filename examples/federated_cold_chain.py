"""Federated cold-chain monitoring: declarative queries over two sites.

Two sites, one cold chain. Frozen items are exposed (moved out of their
freezer cases) at site 0; midway through the trace every case travels
to site 1. Every query here is a *declarative spec* compiled into each
site's shared operator engine:

* **q1 / q2** — the paper's exposure monitors (§2, §5.4). Registered
  together they share one frozen-product filter, one latest-temperature
  window, and one events × temperature join per site (multi-query
  optimization, §4.2) — the ledger's operator gauges show it.
* **dwell** — a dwell-time violation monitor (new scenario, zero new
  runtime code: just a spec in ``repro.workloads.monitors``).
* **colocation** — a co-location breach monitor: frozen goods sharing
  a storage location with incompatible ("dry") goods for too long.

When the goods arrive at site 1, the runtime migrates the objects'
collapsed inference state (§4.1) *and* every compiled plan's per-object
automaton state (Appendix B) through the uniform QueryState protocol —
so an exposure run that started at site 0 can still fire at site 1.

Sites run concurrently on worker threads (``ThreadedTransport``); the
result is bit-identical to the deterministic in-process transport.

Run:  python examples/federated_cold_chain.py
"""

from repro.core.service import ServiceConfig
from repro.queries.q1 import FreezerExposureQuery
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import Cluster, ThreadedTransport
from repro.workloads.monitors import ColocationBreachQuery, DwellTimeQuery
from repro.workloads.scenarios import cold_chain_scenario


def main() -> None:
    scenario = cold_chain_scenario(
        seed=7,
        n_sites=2,
        n_freezer_cases=6,
        n_room_cases=3,
        items_per_case=6,
        n_exposures=4,
        horizon=1500,
        site_leave_time=700,
    )
    exposed = {tag for tag, _, back in scenario.exposures if back is None}
    print("sites:", len(scenario.traces), " exposed items:", sorted(map(str, exposed)))

    config = ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation="cr",
        emit_events=True,
        event_period=5,
    )
    with ThreadedTransport() as transport:
        cluster = Cluster(scenario.traces, config, transport=transport)
        # Four declarative queries per site, compiled into one shared
        # engine. Q1/Q2 share their entire local sub-plan.
        cluster.add_query(
            "q1",
            lambda site: FreezerExposureQuery(scenario.catalog, exposure_duration=300),
        )
        cluster.add_query(
            "q2",
            lambda site: TemperatureExposureQuery(scenario.catalog, exposure_duration=400),
        )
        cluster.add_query("dwell", lambda site: DwellTimeQuery(max_dwell=500))
        cluster.add_query(
            "colocation",
            lambda site: ColocationBreachQuery(
                scenario.catalog, conflicts=(("frozen", "dry"),), duration=100
            ),
        )
        cluster.set_sensor_streams(
            {site: scenario.sensor_stream(site) for site in range(len(scenario.traces))}
        )
        cluster.run(scenario.horizon)

        ledger = cluster.network
        print(
            f"\ncompiled operators: {ledger.plan_operators_built} built, "
            f"{ledger.plan_operators_shared} reused via multi-query sharing"
        )

        for node in cluster.nodes:
            q2 = node.queries["q2"]
            print(f"\nsite {node.site} exposure alerts (q2):")
            for alert in q2.alerts:
                print(
                    f"  {alert.key} exposed {alert.start_time}..{alert.end_time} "
                    f"({len(alert.values)} readings)"
                )
            dwell = node.queries["dwell"]
            print(f"site {node.site} dwell violations: {len(dwell.violations())}")
            breaches = node.queries["colocation"].breaches()
            print(f"site {node.site} co-location breaches: {len(breaches)}")
            for tag, _, place, time in breaches[:4]:
                print(f"  {tag} next to incompatible goods at place {place}, t={time}")

        print("\nwire traffic by kind:")
        for kind in sorted(ledger.bytes_by_kind):
            print(
                f"  {kind:<15} {ledger.messages_by_kind[kind]:>4} msgs "
                f"{ledger.bytes_by_kind[kind]:>7,} B"
            )
        migrated = [m for m in cluster.migrations if m.tag in exposed]
        print(f"\nexposed-item state hand-offs: {len(migrated)}")
        print(f"containment error: {cluster.containment_error(scenario.truth):.2%}")


if __name__ == "__main__":
    main()
