"""Quickstart: simulate a warehouse, infer containment and location.

Generates a noisy RFID reading stream for one warehouse (entry, belt,
shelf, and exit readers; 80% read rate), runs RFINFER over it, and
compares the inferred containment and locations against ground truth.
Finally, the streaming service's output is captured into a historical
archive and queried back — "where was this item at time t".

Run:  python examples/quickstart.py
"""

from repro.archive import SiteArchive
from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import RFInfer
from repro.core.service import ServiceConfig, StreamingInference
from repro.metrics.accuracy import containment_error_rate, location_error_rate
from repro.serving import HistoryService
from repro.sim.supplychain import simulate


def main() -> None:
    # 1. Simulate: pallets of cases of items flow entry → belt → shelf →
    #    exit; every reader is noisy (π(r, r) = 0.8, shelf overlap 0.5).
    result = simulate(
        n_warehouses=1,
        horizon=1200,
        items_per_case=10,
        injection_period=150,
        main_read_rate=0.8,
        seed=7,
    )
    trace = result.trace
    print(f"simulated {len(trace):,} raw readings "
          f"for {len(result.truth.items())} items in {len(result.truth.cases())} cases")

    # 2. Infer: one RFINFER run over the whole trace.
    window = TraceWindow.from_range(trace, 0, trace.horizon)
    inference = RFInfer(window).run()
    print(f"EM converged in {inference.iterations} iterations")

    # 3. Inspect one item: who contains it, and where has it been?
    item = result.truth.items()[0]
    print(f"\n{item}: inferred container = {inference.container_of(item)}"
          f" (truth: {result.truth.container_at(item, trace.horizon - 1)})")
    for epoch in (30, 300, 900):
        place = inference.location_at(item, epoch)
        name = trace.layout.specs[place].name if place >= 0 else "away"
        print(f"  location at t={epoch:4d}: {name}")

    # 4. Score against ground truth.
    cont_err = containment_error_rate(result.truth, inference.containment,
                                      trace.horizon - 1)
    loc_err = location_error_rate(result.truth, inference, site=0)
    print(f"\ncontainment error: {cont_err:.2%}")
    print(f"location error:    {loc_err:.2%}")

    # 5. Time travel: run the periodic service, archive each boundary's
    #    output, then ask the history store instead of the live stream.
    service = StreamingInference(trace, ServiceConfig(
        run_interval=300, emit_events=True, event_period=5))
    archive = SiteArchive(site=0)
    for boundary in range(300, trace.horizon + 1, 300):
        service.run_at(boundary)
        archive.ingest_service(service)
    history = HistoryService(archive)
    (container, posterior), = history.point_containment(item, 900).rows
    print(f"\narchived answer at t=900: {item} in {container} "
          f"(posterior {posterior:.2f})")
    trajectory = history.trajectory(item, 0, trace.horizon).rows
    print(f"trajectory intervals: {len(trajectory)}; "
          f"dwell by place: {dict(history.dwell(item, 0, trace.horizon).rows)}")


if __name__ == "__main__":
    main()
