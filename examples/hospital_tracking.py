"""Hospital asset tracking: misplaced equipment and path deviations.

The paper's §1 motivates RFID inference with a hospital that tags
medical equipment. This example runs two of the intro's query classes
on a simulated deployment:

* a *containment anomaly monitor* — change-point detection flags
  equipment moved into the wrong cart ("misplaced objects... as they
  occur"), and
* a *tracking query* — "report any pallet that has deviated from its
  intended path" over a multi-ward deployment.

Run:  python examples/hospital_tracking.py
"""

from repro.core.events import ObjectEvent
from repro.core.service import ServiceConfig, StreamingInference
from repro.metrics.fmeasure import change_detection_fmeasure
from repro.queries.tracking import PathDeviationQuery
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.tags import TagKind
from repro.sim.warehouse import WarehouseParams


def misplaced_equipment() -> None:
    """Wards = shelves; carts = cases; devices = items."""
    result = simulate(
        SupplyChainParams(
            horizon=1800,
            items_per_case=10,     # devices per cart
            cases_per_pallet=4,
            injection_period=240,
            main_read_rate=0.8,
            n_shelves=6,           # six storage areas
            anomaly_interval=90,   # a device is misplaced every ~90 s
            seed=31,
        )
    )
    service = StreamingInference(
        result.trace,
        ServiceConfig(run_interval=300, recent_history=600, truncation="cr",
                      change_detection=True, change_threshold=80.0,
                      emit_events=False),
    )
    service.run_until(1800)
    print(f"injected misplacements : {len(result.truth.changes)}")
    print(f"raised alerts          : {len(service.changes)}")
    for change in service.changes[:5]:
        target = change.new_container if change.new_container else "<removed>"
        print(f"  t={change.time:4d}  {change.tag} moved "
              f"{change.old_container} -> {target}  (score {change.score:.0f})")
    fm = change_detection_fmeasure(result.truth.changes, service.changes,
                                   tolerance=600)
    print(f"precision={fm.precision:.2f} recall={fm.recall:.2f} F1={fm.f1:.2f}")


def path_deviation() -> None:
    """Carts are routed ward 0 → 1 → 2; flag any that stray."""
    result = simulate(
        SupplyChainParams(
            n_warehouses=3,
            horizon=2400,
            items_per_case=6,
            cases_per_pallet=3,
            injection_period=300,
            main_read_rate=0.85,
            warehouse=WarehouseParams(shelf_dwell_mean=300, shelf_dwell_jitter=40),
            seed=32,
        )
    )
    carts = result.truth.cases()
    # Every cart is supposed to follow 0 → 1 → 2; pretend the odd ones
    # were only cleared for wards 0 → 1 to create deviations.
    routes = {
        cart: (0, 1, 2) if cart.serial % 2 == 0 else (0, 1)
        for cart in carts
    }
    query = PathDeviationQuery(routes)
    # Feed ground-truth site visits (a deployment would feed inferred
    # events; see examples/cold_chain_monitoring.py for that wiring).
    for site, trace in enumerate(result.traces):
        for reading in trace.readings:
            if reading.tag.kind is TagKind.CASE:
                query.on_event(ObjectEvent(reading.time, reading.tag, site,
                                           reading.reader, None))
    print(f"\ncarts monitored        : {len(routes)}")
    print(f"deviation alerts       : {len(query.alerts)}")
    for alert in query.alerts[:5]:
        print(f"  t={alert.time:4d}  {alert.tag} showed up at ward {alert.site}, "
              f"route allowed {alert.expected}")


def main() -> None:
    print("== misplaced equipment (containment anomalies) ==")
    misplaced_equipment()
    print("\n== path deviation tracking ==")
    path_deviation()


if __name__ == "__main__":
    main()
