"""Warehouse audit: time-travel queries over federated site history.

The monitoring layer catches a cold-chain exposure *while it happens*;
this example shows the follow-up an auditor actually runs, hours later:
**where was the exposed item, when, inside what, and which alerts does
the record hold?** — answered from the per-site historical archives
through the serving frontend, never by re-running inference.

The script:

1. runs a two-site cold chain (cases migrate between warehouses
   mid-run) with streaming inference and the Q2 exposure monitor;
2. attaches a :class:`~repro.serving.frontend.QueryFrontend` and opens
   an audit session;
3. for each ground-truth exposure, asks point-in-time containment
   (top-3 posterior), the item's full trajectory across both sites,
   dwell totals, and its containment provenance chain;
4. scans the federated alert history and shows the serving stats —
   note the cache hits when the same audit runs twice.

Run:  PYTHONPATH=src python examples/warehouse_audit.py
"""

from repro.core.service import ServiceConfig
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import Cluster
from repro.serving import QueryFrontend
from repro.workloads.scenarios import cold_chain_scenario

HORIZON = 1500


def audit_item(session, tag, moved_out):
    print(f"\n--- audit: {tag} (moved into a room case at t={moved_out}) ---")
    for time in (moved_out - 100, moved_out + 100, HORIZON - 1):
        result = session.containment(tag, time, k=3)
        ranked = ", ".join(
            f"{container} p={posterior:.2f}" for container, posterior in result.rows
        ) or "unknown"
        print(f"  t={time:4d}  containment (site {result.site}): {ranked}")
    chain = session.provenance(tag, HORIZON - 1)
    print(f"  provenance at t={HORIZON - 1}: "
          + " -> ".join(str(c) for c, _ in chain.rows))
    trajectory = session.trajectory(tag, 0, HORIZON)
    print(f"  trajectory: {len(trajectory.rows)} intervals across sites "
          f"{sorted({row[0] for row in trajectory.rows})}")
    dwell = session.dwell(tag, 0, HORIZON)
    top = sorted(dwell.rows, key=lambda row: -row[2])[:3]
    print("  longest dwells: "
          + ", ".join(f"site {s} place {p}: {e} epochs" for s, p, e in top))


def main() -> None:
    scenario = cold_chain_scenario(
        seed=33, n_sites=2, n_freezer_cases=6, n_room_cases=3,
        items_per_case=6, n_exposures=4, horizon=HORIZON, site_leave_time=700,
    )
    config = ServiceConfig(
        run_interval=300, recent_history=600, truncation="cr",
        emit_events=True, event_period=5,
    )
    with Cluster(scenario.traces, config) as cluster:
        cluster.add_query("q2", lambda site: TemperatureExposureQuery(
            scenario.catalog, exposure_duration=400))
        cluster.set_sensor_streams(
            {s: scenario.sensor_stream(s) for s in range(len(scenario.traces))})
        frontend = QueryFrontend()
        cluster.attach_frontend(frontend)
        print(f"running {len(scenario.traces)} sites to t={HORIZON} ...")
        cluster.run(HORIZON)

        session = frontend.session("auditor")
        for tag, moved_out, _ in scenario.exposures:
            audit_item(session, tag, moved_out)

        alerts = session.alerts("q2")
        print(f"\nfederated alert record: {len(alerts.rows)} Q2 alerts")
        for site, _, key, start, end, _ in alerts.rows[:5]:
            print(f"  site {site}: {key} exposed over [{start}, {end}]")

        # Re-run one audit: the epoch-tagged cache now serves it.
        for tag, moved_out, _ in scenario.exposures[:1]:
            audit_item(session, tag, moved_out)
        stats = frontend.stats
        print(f"\nserving stats: {stats.queries} queries, "
              f"{stats.cache_hits} cache hits "
              f"({stats.hit_rate():.0%}), "
              f"{stats.remote_requests} site requests")
        history_bytes = {
            kind: count
            for kind, count in cluster.network.bytes_by_kind.items()
            if kind.startswith("history-")
        }
        print(f"serving wire cost (own ledger kinds): {history_bytes}")


if __name__ == "__main__":
    main()
