"""Cold-chain monitoring: the paper's Query 1 end to end.

A warehouse stores frozen products in freezer cases on freezer shelves.
Someone misplaces a few items into room-temperature cases. The pipeline:

  raw RFID readings ──► streaming RFINFER ──► object events
  temperature sensors ───────────────────────► sensor stream
                      Q1: alert if a frozen product sits outside a
                          freezer at > 0 °C for the exposure duration

Alerts computed on the *inferred* event stream are scored against the
alerts a perfect (ground-truth) stream produces.

Run:  python examples/cold_chain_monitoring.py
"""

from repro.core.events import ObjectEvent, events_from_truth
from repro.core.service import ServiceConfig, StreamingInference
from repro.metrics.fmeasure import match_alerts
from repro.queries.q1 import FreezerExposureQuery
from repro.sim.sensors import SensorReading
from repro.streams.engine import StreamScheduler
from repro.workloads.scenarios import cold_chain_scenario

EXPOSURE = 300  # epochs outside a freezer before alerting (paper: 6 h)


def run_q1(events, scenario):
    query = FreezerExposureQuery(scenario.catalog, exposure_duration=EXPOSURE)
    scheduler = StreamScheduler()
    scheduler.route(ObjectEvent, query.on_event)
    scheduler.route(SensorReading, query.on_sensor)
    scheduler.run(events, scenario.sensor_stream(0))
    return query


def main() -> None:
    scenario = cold_chain_scenario(
        seed=11, read_rate=0.85, n_exposures=4, n_short_exposures=1
    )
    print(f"{len(scenario.truth.items())} products, "
          f"{len(scenario.catalog.freezer_cases)} freezer cases; "
          f"injected exposures: {[(str(t), o) for t, o, _ in scenario.exposures]}")

    # Streaming inference every 300 s with critical-region truncation.
    service = StreamingInference(
        scenario.trace,
        ServiceConfig(run_interval=300, recent_history=600, truncation="cr",
                      emit_events=True, event_period=5),
    )
    service.run_until(scenario.horizon)
    print(f"inference produced {len(service.events):,} object events")

    truth_query = run_q1(events_from_truth(scenario.truth, scenario.horizon,
                                           period=5), scenario)
    inferred_query = run_q1(sorted(service.events, key=lambda e: e.time), scenario)

    print("\nground-truth alerts:")
    for alert in truth_query.alerts:
        print(f"  {alert.key} exposed since t={alert.start_time}, "
              f"alert at t={alert.end_time}")
    print("alerts from inferred stream:")
    for alert in inferred_query.alerts:
        temps = ", ".join(f"{t:.1f}" for t in alert.values[:5])
        print(f"  {alert.key} alert at t={alert.end_time} (temps: {temps}, ...)")

    fm = match_alerts(inferred_query.alert_pairs(), truth_query.alert_pairs(),
                      tolerance=310)
    print(f"\nprecision={fm.precision:.2f} recall={fm.recall:.2f} F1={fm.f1:.2f}")


if __name__ == "__main__":
    main()
