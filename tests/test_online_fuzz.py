"""Property/fuzz tests for the online-detector state codec.

The detector's run-length posteriors ride inside every v3 service
checkpoint, so the codec gets the same treatment as the envelope
formats (:mod:`tests.test_envelope_fuzz`):

* **round trips** — random detector states (arbitrary incumbents,
  cooloff/stale counters, float64 posteriors of any length >= 1)
  survive encode→decode bit-exactly, across hypothesis and seeded
  sweeps;
* **adversarial bytes** — every strict prefix of a valid encoding
  raises :class:`ValueError`, and any single bit flip either decodes
  cleanly or raises :class:`ValueError` — never ``EOFError``,
  ``IndexError``, or ``struct.error``, which would leak decoder
  internals into checkpoint restore.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._util.encoding import ByteWriter
from repro.core.online import (
    ONLINE_STATE_VERSION,
    OnlineChangeDetector,
    OnlineConfig,
    TagState,
    decode_online_state,
    encode_online_state,
    restore_online_state,
)
from repro.sim.tags import EPC, TagKind, write_epc


def epcs():
    return st.builds(
        EPC,
        st.sampled_from([TagKind.PALLET, TagKind.CASE, TagKind.ITEM]),
        st.integers(0, 2**20),
    )


def run_lengths():
    return st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        min_size=1,
        max_size=8,
    ).map(np.array)


def tag_states():
    return st.builds(
        TagState,
        incumbent=st.none() | epcs(),
        rl=run_lengths(),
        cooloff=st.integers(0, 12),
        stale=st.integers(0, 12),
    )


def detectors(boundaries, flagged, states):
    detector = OnlineChangeDetector(OnlineConfig())
    detector.boundaries = boundaries
    detector.flagged = flagged
    detector.states = states
    return detector


class TestRoundTrips:
    @given(
        boundaries=st.integers(0, 2**32),
        flagged=st.sets(epcs(), max_size=5),
        states=st.dictionaries(epcs(), tag_states(), max_size=6),
    )
    @settings(max_examples=60)
    def test_detector_state(self, boundaries, flagged, states):
        blob = encode_online_state(detectors(boundaries, flagged, states))
        assert decode_online_state(blob) == (boundaries, flagged, states)

    @given(
        boundaries=st.integers(0, 2**16),
        flagged=st.sets(epcs(), max_size=3),
        states=st.dictionaries(epcs(), tag_states(), max_size=4),
    )
    @settings(max_examples=30)
    def test_restore_then_reencode_is_identity(self, boundaries, flagged, states):
        blob = encode_online_state(detectors(boundaries, flagged, states))
        fresh = OnlineChangeDetector(OnlineConfig())
        restore_online_state(fresh, blob)
        assert encode_online_state(fresh) == blob

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_seeded_random_round_trips(self, seed):
        """The non-hypothesis sweep: one fixed state per seed, so a
        codec regression bisects to a seed."""
        rng = random.Random(seed)
        tags = [
            EPC(TagKind(rng.randrange(3)), rng.randrange(2**16)) for _ in range(8)
        ]
        states = {
            tag: TagState(
                incumbent=rng.choice([None, tags[0]]),
                rl=np.array([rng.uniform(-50, 0) for _ in range(rng.randrange(1, 9))]),
                cooloff=rng.randrange(4),
                stale=rng.randrange(4),
            )
            for tag in tags
        }
        blob = encode_online_state(detectors(rng.randrange(2**20), set(tags[:3]), states))
        # encode is canonical (tags sorted), so a decode→re-encode loop
        # must reproduce the exact bytes.
        assert decode_and_reencode(blob) == blob

    def test_live_detector_round_trips_bit_identically(self):
        """A detector that actually observed something (not synthetic)."""
        detector = OnlineChangeDetector(OnlineConfig())
        for serial in range(6):
            detector.confirm(EPC(TagKind.ITEM, serial), EPC(TagKind.CASE, 1))
        blob = encode_online_state(detector)
        fresh = OnlineChangeDetector(OnlineConfig())
        restore_online_state(fresh, blob)
        assert encode_online_state(fresh) == blob


def decode_and_reencode(blob):
    boundaries, flagged, states = decode_online_state(blob)
    return encode_online_state(detectors(boundaries, flagged, states))


def valid_blob() -> bytes:
    """One representative encoding: flagged tags, a None incumbent, and
    posteriors of several lengths."""
    tags = [EPC(TagKind.ITEM, 7), EPC(TagKind.CASE, 300), EPC(TagKind.PALLET, 0)]
    states = {
        tags[0]: TagState(incumbent=tags[1], rl=np.array([0.0, -1.5, -40.0])),
        tags[1]: TagState(incumbent=None, rl=np.array([-0.25]), cooloff=2),
        tags[2]: TagState(incumbent=tags[2], rl=np.array([0.0] * 5), stale=1),
    }
    return encode_online_state(detectors(12, {tags[0]}, states))


class TestAdversarialBytes:
    def test_every_truncated_prefix_raises_value_error(self):
        data = valid_blob()
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                decode_online_state(data[:cut])

    def test_every_bit_flip_is_valueerror_or_clean(self):
        data = valid_blob()
        for pos in range(len(data)):
            for bit in range(8):
                corrupt = bytearray(data)
                corrupt[pos] ^= 1 << bit
                try:
                    decode_online_state(bytes(corrupt))
                except ValueError:
                    pass  # the contract: ValueError, nothing rawer

    @given(junk=st.binary(max_size=60))
    @settings(max_examples=80)
    def test_random_junk_never_leaks_decoder_errors(self, junk):
        try:
            decode_online_state(junk)
        except ValueError:
            pass

    def test_rejects_unknown_version(self):
        writer = ByteWriter()
        writer.varint(ONLINE_STATE_VERSION + 1)
        writer.varint(0).varint(0).varint(0)
        with pytest.raises(ValueError, match="version"):
            decode_online_state(writer.getvalue())

    def test_rejects_empty_posterior(self):
        writer = ByteWriter()
        writer.varint(ONLINE_STATE_VERSION)
        writer.varint(3)  # boundaries
        writer.varint(0)  # no flagged tags
        writer.varint(1)  # one state ...
        write_epc(writer, EPC(TagKind.ITEM, 9))
        writer.varint(3)  # ... with no incumbent (the opt-EPC sentinel)
        writer.varint(0).varint(0)  # cooloff, stale
        writer.varint(0)  # zero-length run-length posterior
        with pytest.raises(ValueError, match=">= 1 bin"):
            decode_online_state(writer.getvalue())

    def test_rejects_trailing_bytes(self):
        with pytest.raises(ValueError, match="trailing"):
            decode_online_state(valid_blob() + b"\x00")
