"""Segment replication: cursors, deltas, catch-up, byte-identity.

The replication contract (ISSUE 7 acceptance): after catch-up a
replica's archive is **bit-identical** to its primary —
``encode_archive(replica) == encode_archive(primary)`` — and stays so
across incremental growth, compaction (generation bump → full resync),
replica crash+rejoin, and seeded chaos transports that drop, duplicate,
delay, and reorder the replication envelopes themselves.
"""

import os

import pytest

from repro.archive import SiteArchive, encode_archive
from repro.archive.replication import (
    ZERO_CURSOR,
    apply_archive_delta,
    cursor_of,
    decode_replica_fetch,
    encode_archive_delta,
    encode_replica_fetch,
)
from repro.runtime import FaultPlan, FaultyTransport, InProcessTransport
from repro.runtime.envelope import REPLICA_SEGMENTS, Envelope
from repro.serving import (
    ArchivePublisher,
    ArchiveReplica,
    REPLICA_SITE_BASE,
    replica_site_id,
)
from repro.sim.tags import EPC, TagKind

# CHAOS_SEED (CI matrix) replaces the built-in seeds, mirroring
# tests/test_fault_tolerance.py.
CHAOS_SEEDS = (
    [int(os.environ["CHAOS_SEED"])] if os.environ.get("CHAOS_SEED") else [11, 23, 47]
)


def build_archive(site: int = 0, tags: int = 5, boundaries: int = 4) -> SiteArchive:
    """A small synthetic archive touching every log kind."""
    archive = SiteArchive(site, seal_every=8)
    grow_archive(archive, 0, boundaries, tags=tags)
    return archive


def grow_archive(
    archive: SiteArchive, first: int, boundaries: int, tags: int = 5
) -> None:
    """Append ``boundaries`` more inference boundaries' worth of rows."""
    case = archive.intern_tag(EPC(TagKind.CASE, 900))
    name_id = archive.intern_key("q-test")
    for b in range(first, first + boundaries):
        time = b * 100
        for i in range(tags):
            tid = archive.intern_tag(EPC(TagKind.ITEM, i))
            place = (b + i) % 3
            archive.location.observe(tid, time, ((place, 1.0),), value_only=True)
            archive.containment.observe(tid, time, ((case, 0.9),), value_only=True)
            archive.belief.observe(tid, time, ((case, 0.8), (tid, 0.2)))
            archive.events.append(time, tid, place, case)
            if time > archive.last_event.get(tid, -1):
                archive.last_event[tid] = time
        key_id = archive.intern_key(f"alert-{b}")
        archive.alerts.append(name_id, key_id, time, time + 10, (float(b), 1.5))
        archive.alert_cursors["q-test"] = b + 1
        archive.last_boundary = time
    archive.seal()


def assert_identical(replica: ArchiveReplica, primary: SiteArchive) -> None:
    assert encode_archive(replica.archive) == encode_archive(primary)


class TestDeltaCodec:
    def test_fetch_roundtrip(self):
        archive = build_archive()
        cursor = cursor_of(archive)
        fetch_id, decoded = decode_replica_fetch(encode_replica_fetch(7, cursor))
        assert fetch_id == 7
        assert decoded == cursor

    def test_full_delta_builds_identical_archive(self):
        primary = build_archive()
        delta = encode_archive_delta(primary, ZERO_CURSOR, fetch_id=1)
        rebuilt, fetch_id, full = apply_archive_delta(None, delta)
        assert fetch_id == 1 and full
        assert encode_archive(rebuilt) == encode_archive(primary)

    def test_incremental_delta_is_smaller_and_identical(self):
        primary = build_archive()
        replica, _, _ = apply_archive_delta(
            None, encode_archive_delta(primary, ZERO_CURSOR)
        )
        cursor = cursor_of(replica)
        grow_archive(primary, 4, 2)
        incremental = encode_archive_delta(primary, cursor)
        full = encode_archive_delta(primary, ZERO_CURSOR)
        assert len(incremental) < len(full)
        applied, _, was_full = apply_archive_delta(replica, incremental)
        assert applied is replica and not was_full
        assert encode_archive(replica) == encode_archive(primary)

    def test_duplicate_delta_raises_not_corrupts(self):
        primary = build_archive()
        replica, _, _ = apply_archive_delta(
            None, encode_archive_delta(primary, ZERO_CURSOR)
        )
        cursor = cursor_of(replica)
        grow_archive(primary, 4, 1)
        delta = encode_archive_delta(primary, cursor)
        apply_archive_delta(replica, delta)
        before = encode_archive(replica)
        with pytest.raises(ValueError, match="does not match"):
            apply_archive_delta(replica, delta)
        assert encode_archive(replica) == before  # rejected before mutation

    def test_malformed_delta_raises_valueerror(self):
        primary = build_archive()
        delta = encode_archive_delta(primary, ZERO_CURSOR)
        for mangled in (b"", b"\xff" * 8, delta[: len(delta) // 2]):
            with pytest.raises(ValueError):
                apply_archive_delta(None, mangled)
        with pytest.raises(ValueError):
            decode_replica_fetch(b"\x02junk")

    def test_compaction_forces_full_resync(self):
        primary = build_archive()
        replica, _, _ = apply_archive_delta(
            None, encode_archive_delta(primary, ZERO_CURSOR)
        )
        cursor = cursor_of(replica)
        primary.compact()
        delta = encode_archive_delta(primary, cursor)
        rebuilt, _, full = apply_archive_delta(replica, delta)
        assert full and rebuilt is not replica
        assert encode_archive(rebuilt) == encode_archive(primary)


class TestReplicaService:
    def wire(self, transport=None):
        transport = transport if transport is not None else InProcessTransport()
        primary = build_archive()
        publisher = ArchivePublisher(primary)
        publisher.bind(transport)
        replica = ArchiveReplica(primary.site, replica_site_id(primary.site, 0, 1))
        replica.bind(transport)
        return transport, primary, replica

    def test_site_id_validation(self):
        with pytest.raises(ValueError, match="below"):
            ArchiveReplica(0, REPLICA_SITE_BASE + 1)
        with pytest.raises(ValueError, match="outside"):
            replica_site_id(2, 0, 2)
        # Distinct (index, primary) pairs never collide.
        ids = {replica_site_id(p, r, 3) for p in range(3) for r in range(4)}
        assert len(ids) == 12 and all(i <= REPLICA_SITE_BASE for i in ids)

    def test_catchup_reaches_identity_and_is_incremental(self):
        _, primary, replica = self.wire()
        assert replica.catch_up() == 1
        assert_identical(replica, primary)
        grow_archive(primary, 4, 2)
        first_bytes = replica.stats.bytes_applied
        replica.catch_up()
        assert_identical(replica, primary)
        # The second round shipped a delta, not the whole archive again.
        assert replica.stats.bytes_applied - first_bytes < first_bytes
        assert replica.stats.full_resyncs == 0

    def test_compaction_resync_through_the_service(self):
        _, primary, replica = self.wire()
        replica.catch_up()
        primary.compact()
        grow_archive(primary, 4, 1)
        replica.catch_up()
        assert replica.stats.full_resyncs == 1
        assert_identical(replica, primary)

    def test_replica_crash_and_rejoin(self):
        transport, primary, replica = self.wire()
        replica.catch_up()
        grow_archive(primary, 4, 2)
        # The replica process dies; a fresh instance (empty archive,
        # zero cursor) takes over its duties and converges from scratch.
        rejoined = ArchiveReplica(primary.site, replica_site_id(primary.site, 1, 1))
        rejoined.bind(transport)
        rejoined.catch_up()
        assert_identical(rejoined, primary)

    def test_foreign_envelope_kinds_are_dropped(self):
        _, primary, replica = self.wire()
        replica.handle(Envelope(0, replica.site_id, "inference-state", b"", 0))
        replica.handle(Envelope(0, replica.site_id, REPLICA_SEGMENTS, b"\xff" * 4, 0))
        assert replica.stats.dropped == 1
        assert replica.stats.stale_deltas == 1

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_chaos_catchup_identity(self, seed):
        """Drops, duplicates, delays, reordering — identity regardless.

        Includes crash+catch-up: a replica that loses all state rejoins
        over the same chaotic links and still converges bit-identically.
        """
        plan = FaultPlan.chaos(seed, drop=0.25, duplicate=0.2, delay=0.25, max_delay=3)
        transport, primary, replica = self.wire(FaultyTransport(plan))
        replica.catch_up()
        assert_identical(replica, primary)
        for step in range(3):
            grow_archive(primary, 4 + 2 * step, 2)
            replica.catch_up()
            assert_identical(replica, primary)
        primary.compact()
        replica.catch_up()
        assert_identical(replica, primary)
        rejoined = ArchiveReplica(primary.site, replica_site_id(primary.site, 1, 1))
        rejoined.bind(transport)
        rejoined.catch_up()
        assert_identical(rejoined, primary)
