"""Property/fuzz tests for the archive codec and serving wire formats.

Mirrors :mod:`tests.test_envelope_fuzz` for the new formats introduced
with the historical archive:

* **round trips** — random history requests/responses (every query
  kind) and randomly-built site archives survive encode→decode;
* **adversarial bytes** — every strict prefix of a valid encoding
  raises :class:`ValueError`, and any single bit flip either decodes
  cleanly or raises :class:`ValueError` — never ``EOFError``,
  ``IndexError``, or ``struct.error``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.archive import NO_CONTAINER, SiteArchive, decode_archive, encode_archive
from repro.serving.wire import (
    HISTORY_KINDS,
    HistoryRequest,
    HistoryResponse,
    decode_history_request,
    decode_history_response,
    encode_history_request,
    encode_history_response,
)
from repro.sim.tags import EPC, TagKind


def epcs():
    return st.builds(
        EPC,
        st.sampled_from([TagKind.PALLET, TagKind.CASE, TagKind.ITEM]),
        st.integers(0, 2**20),
    )


def requests():
    return st.builds(
        HistoryRequest,
        request_id=st.integers(0, 2**32),
        kind=st.sampled_from(HISTORY_KINDS),
        tag=st.one_of(st.none(), epcs()),
        t0=st.integers(-1, 2**20),
        t1=st.integers(-1, 2**20),
        k=st.integers(1, 8),
        name=st.text(max_size=12),
    )


def finite_floats():
    return st.floats(allow_nan=False, allow_infinity=False, width=64)


def rows_for(kind):
    if kind == "location":
        row = st.tuples(st.integers(-5, 2**16), finite_floats())
    elif kind in ("containment", "provenance"):
        row = st.tuples(st.one_of(st.none(), epcs()), finite_floats())
    elif kind == "trajectory":
        row = st.tuples(
            st.integers(0, 2**20), st.integers(-1, 2**20), st.integers(-5, 2**16)
        )
    elif kind == "dwell":
        row = st.tuples(st.integers(-5, 2**16), st.integers(0, 2**20))
    else:  # alerts
        row = st.tuples(
            st.text(max_size=8),
            st.text(max_size=8),
            st.integers(0, 2**20),
            st.integers(0, 2**20),
            st.tuples(finite_floats(), finite_floats()).map(tuple),
        )
    return st.lists(row, max_size=6).map(tuple)


def responses():
    return st.sampled_from(HISTORY_KINDS).flatmap(
        lambda kind: st.builds(
            HistoryResponse,
            request_id=st.integers(0, 2**32),
            site=st.integers(-4, 64),
            as_of=st.integers(0, 2**20),
            kind=st.just(kind),
            last_update=st.integers(-1, 2**20),
            rows=rows_for(kind),
        )
    )


class TestRoundTrips:
    @given(request=requests())
    @settings(max_examples=80)
    def test_history_request(self, request):
        assert decode_history_request(encode_history_request(request)) == request

    @given(response=responses())
    @settings(max_examples=120)
    def test_history_response(self, response):
        assert decode_history_response(encode_history_response(response)) == response

    def test_request_rejects_unknown_kind_and_bad_k(self):
        with pytest.raises(ValueError, match="kind"):
            encode_history_request(HistoryRequest(0, "nope", None, 0))
        with pytest.raises(ValueError, match="top-k"):
            encode_history_request(HistoryRequest(0, "location", None, 0, k=0))
        with pytest.raises(ValueError, match="kind"):
            encode_history_response(HistoryResponse(0, 0, 0, "nope", -1, ()))

    @given(
        moves=st.lists(
            st.tuples(
                st.integers(0, 5),  # tag serial
                st.integers(0, 400),  # epoch
                st.integers(0, 8),  # place / candidate
                finite_floats(),
            ),
            max_size=20,
        ),
        seal_every=st.integers(1, 8),
        seal_points=st.sets(st.integers(0, 19), max_size=4),
    )
    @settings(max_examples=60)
    def test_archive_codec_round_trip(self, moves, seal_every, seal_points):
        archive = SiteArchive(3, seal_every=seal_every, top_k=2)
        for index, (serial, epoch, place, posterior) in enumerate(moves):
            tag = archive.intern_tag(EPC(TagKind.ITEM, serial))
            case = archive.intern_tag(EPC(TagKind.CASE, serial % 3))
            epoch = epoch + index  # keep per-tag observations ordered
            archive.location.observe(tag, epoch, ((place, 1.0),))
            archive.containment.observe(
                tag, epoch, ((case, abs(posterior) % 1.0),), value_only=True
            )
            archive.belief.observe(tag, epoch, ((case, posterior), (tag, 0.0)))
            archive.events.append(epoch, tag, place, case)
            archive.alerts.append(
                archive.intern_key("q"), archive.intern_key(str(serial)),
                epoch, epoch + 1, (posterior,),
            )
            archive.last_boundary = max(archive.last_boundary, epoch)
            if index in seal_points:
                archive.seal()
        data = encode_archive(archive)
        restored = decode_archive(data)
        assert encode_archive(restored) == data
        assert restored.row_count() == archive.row_count()
        assert restored.tag_table == archive.tag_table
        assert restored.key_table == archive.key_table


def corpus():
    """One representative valid encoding per decoder."""
    tag = EPC(TagKind.ITEM, 7)
    case = EPC(TagKind.CASE, 2)
    archive = SiteArchive(1, seal_every=2, top_k=2)
    tag_id = archive.intern_tag(tag)
    case_id = archive.intern_tag(case)
    for epoch, place in ((0, 3), (10, 4), (20, 5)):
        archive.location.observe(tag_id, epoch, ((place, 1.0),))
    archive.containment.observe(tag_id, 0, ((case_id, 0.75),))
    archive.belief.observe(tag_id, 0, ((case_id, 0.75), (tag_id, 0.25)))
    archive.events.append(5, tag_id, 3, NO_CONTAINER)
    archive.alerts.append(
        archive.intern_key("q2"), archive.intern_key(str(tag)), 1, 2, (0.5, 1.5)
    )
    archive.seal()
    archive.alerts.append(
        archive.intern_key("q2"), archive.intern_key(str(tag)), 3, 4, ()
    )
    archive.alert_cursors["q2"] = 2
    archive.last_boundary = 20
    entries = [
        (
            decode_history_request,
            encode_history_request(HistoryRequest(9, "alerts", tag, 0, 100, 2, "q2")),
        ),
        (decode_archive, encode_archive(archive)),
    ]
    for kind, rows in (
        ("location", ((3, 0.5), (4, 0.25))),
        ("containment", ((case, 0.75), (None, 0.25))),
        ("trajectory", ((0, 10, 3), (10, -1, 4))),
        ("provenance", ((case, 0.9),)),
        ("dwell", ((3, 10), (4, 20))),
        ("alerts", (("q2", str(tag), 1, 2, (0.5, 1.5)),)),
    ):
        entries.append(
            (
                decode_history_response,
                encode_history_response(HistoryResponse(9, 1, 20, kind, 5, rows)),
            )
        )
    return entries


def corpus_ids(value):
    return getattr(value, "__name__", "")


class TestAdversarialBytes:
    @pytest.mark.parametrize("decode,data", corpus(), ids=corpus_ids)
    def test_every_truncated_prefix_raises_value_error(self, decode, data):
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                decode(data[:cut])

    @pytest.mark.parametrize("decode,data", corpus(), ids=corpus_ids)
    def test_every_bit_flip_is_valueerror_or_clean(self, decode, data):
        for pos in range(len(data)):
            for bit in range(8):
                corrupt = bytearray(data)
                corrupt[pos] ^= 1 << bit
                try:
                    decode(bytes(corrupt))
                except ValueError:
                    pass  # the contract: ValueError, nothing rawer

    @given(junk=st.binary(max_size=80))
    @settings(max_examples=60)
    def test_random_junk_never_leaks_decoder_errors(self, junk):
        for decode, _ in corpus():
            try:
                decode(junk)
            except ValueError:
                pass
