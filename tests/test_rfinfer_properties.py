"""Property-based validation of the optimized RFINFER engine.

The optimized engine (pattern caching, scatter-adds, memoization) must
agree with the naive line-by-line Algorithm 1 on any input, and the EM
loop must not decrease the likelihood it maximizes (Theorem 1).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._util.rng import spawn_rng
from repro.core.likelihood import TraceWindow
from repro.core.reference import reference_rfinfer
from repro.core.rfinfer import InferenceConfig, RFInfer
from repro.sim.layout import warehouse_layout
from repro.sim.readers import ObservationSampler, ReadRateModel
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import Location
from repro.sim.world import World


def tiny_world(seed: int, n_cases: int, items_per_case: int, horizon: int):
    """A random little warehouse journey with known containment."""
    rng = spawn_rng(seed, "tiny")
    layout = warehouse_layout(name=f"tiny-{seed}", n_shelves=2)
    model = ReadRateModel.build(layout, main_rate=0.8, overlap_rate=0.5, seed=seed)
    world = World()
    serial = 0
    for c in range(n_cases):
        case = EPC(TagKind.CASE, c)
        world.register(case, 0, location=Location(0, layout.entry))
        for _ in range(items_per_case):
            item = EPC(TagKind.ITEM, serial)
            serial += 1
            world.register(item, 0, container=case)
            world.move(item, 0, Location(0, layout.entry))
        t_belt = 5 + c * 5
        world.move(case, t_belt, Location(0, layout.belt))
        shelf = int(rng.choice(layout.shelf_indices))
        world.move(case, t_belt + 5, Location(0, shelf))
    world.truth.horizon = horizon
    trace = ObservationSampler(seed=spawn_rng(seed, "tiny-sampler")).sample_site(
        world.truth, 0, layout, model, horizon
    )
    return world, trace


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_cases=st.integers(2, 3),
    items_per_case=st.integers(1, 3),
)
def test_optimized_matches_reference(seed, n_cases, items_per_case):
    """Optimized RFINFER == naive Algorithm 1 on random small worlds."""
    world, trace = tiny_world(seed, n_cases, items_per_case, horizon=60)
    window = TraceWindow.from_range(trace, 0, 60)
    objects = window.tags(TagKind.ITEM)
    containers = window.tags(TagKind.CASE)
    if not objects or len(containers) < 2:
        return
    initial = {o: containers[0] for o in objects}
    fast = RFInfer(
        window,
        InferenceConfig(candidate_pruning=False, max_iterations=10),
        objects=objects,
        containers=containers,
        initial_containment=initial,
    ).run()
    slow = reference_rfinfer(
        window, objects, containers, initial_containment=initial, max_iterations=10
    )
    assert fast.containment == slow.containment
    for obj in objects:
        for cand in containers:
            assert fast.weights[obj][cand] == pytest.approx(
                slow.weights[obj][cand], rel=1e-6, abs=1e-6
            )
    for container in containers:
        np.testing.assert_allclose(
            fast.posteriors[container], slow.posteriors[container], atol=1e-9
        )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_em_likelihood_never_decreases(seed):
    """Theorem 1: each EM step cannot lower L(C)."""
    world, trace = tiny_world(seed, n_cases=3, items_per_case=2, horizon=80)
    window = TraceWindow.from_range(trace, 0, 80)
    objects = window.tags(TagKind.ITEM)
    containers = window.tags(TagKind.CASE)
    if not objects or len(containers) < 2:
        return
    # Deliberately bad initialization: everyone in the first container.
    initial = {o: containers[0] for o in objects}
    likelihoods = []
    for iterations in range(1, 6):
        out = RFInfer(
            window,
            InferenceConfig(candidate_pruning=False, max_iterations=iterations),
            objects=objects,
            containers=containers,
            initial_containment=initial,
        ).run()
        likelihoods.append(out.log_likelihood())
    for earlier, later in zip(likelihoods, likelihoods[1:]):
        assert later >= earlier - 1e-6


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_candidate_pruning_preserves_containment(seed):
    """Top-k pruning finds the same containers on separable inputs."""
    world, trace = tiny_world(seed, n_cases=3, items_per_case=2, horizon=100)
    window = TraceWindow.from_range(trace, 0, 100)
    objects = window.tags(TagKind.ITEM)
    containers = window.tags(TagKind.CASE)
    if not objects or len(containers) < 2:
        return
    pruned = RFInfer(
        window,
        InferenceConfig(candidate_pruning=True, n_candidates=5),
        objects=objects,
        containers=containers,
    ).run()
    # Same starting point for the unpruned engine: EM is a local-optimum
    # method, so comparing runs from different initializations would
    # measure initialization, not pruning.
    full = RFInfer(
        window,
        InferenceConfig(candidate_pruning=False),
        objects=objects,
        containers=containers,
        initial_containment=dict(pruned.containment),
    ).run()
    agreement = sum(
        1 for o in objects if pruned.containment[o] == full.containment[o]
    )
    # Pruning is a heuristic: objects whose co-location counts are too
    # sparse may end up unassigned; the bulk must still agree.
    assert agreement >= int(0.75 * len(objects))


def test_convergence_reported(small_chain):
    window = TraceWindow.from_range(small_chain.trace, 0, 500)
    out = RFInfer(window, InferenceConfig(max_iterations=10)).run()
    assert 1 <= out.iterations <= 10
