"""Tests for the hierarchical-containment extension (Appendix A.4)."""

import pytest

from repro.core.hierarchy import infer_hierarchy
from repro.core.likelihood import TraceWindow
from repro.sim.tags import TagKind


@pytest.fixture(scope="module")
def hierarchy(small_chain):
    # Evaluate while the first pallets are still assembled (pallets are
    # only co-located with their cases at the doors).
    window = TraceWindow.from_range(small_chain.trace, 0, 400)
    return small_chain, infer_hierarchy(window)


class TestHierarchy:
    def test_item_level_matches_truth(self, hierarchy):
        chain, result = hierarchy
        truth = chain.truth
        items = [i for i in result.items_level.containment if i.kind is TagKind.ITEM]
        assert items
        right = sum(
            1
            for i in items
            if result.case_of(i) == truth.container_at(i, 399)
        )
        assert right / len(items) >= 0.8

    def test_case_level_assigns_pallets(self, hierarchy):
        chain, result = hierarchy
        assigned = [
            c
            for c in result.cases_level.containment
            if result.pallet_of(c) is not None
        ]
        assert assigned
        for case in assigned:
            assert result.pallet_of(case).kind is TagKind.PALLET

    def test_case_level_accuracy_at_assembly_time(self, hierarchy):
        chain, result = hierarchy
        truth = chain.truth
        scored = 0
        right = 0
        for case, pallet in result.cases_level.containment.items():
            if pallet is None:
                continue
            # Score against the truth while the pallet was intact (the
            # case's container before unpacking, at its first epoch).
            true_pallet = truth.container_at(case, 1)
            if true_pallet is None:
                continue
            scored += 1
            right += pallet == true_pallet
        assert scored > 0
        assert right / scored >= 0.7

    def test_chain_accessor(self, hierarchy):
        _, result = hierarchy
        item = next(iter(result.items_level.containment))
        case, pallet = result.chain_of(item)
        assert case is None or case.kind is TagKind.CASE
        assert pallet is None or pallet.kind is TagKind.PALLET
