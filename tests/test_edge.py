"""Edge ingestion plane: spool durability, vendor feeds, edge nodes,
the ingest gateway, and the end-to-end pipeline.

The headline contract under test: feeding the federation through lossy
per-reader vendor feeds — duplicates, junk lines, reordering, offline
windows with burst replay, dropped/duplicated/delayed links, edge and
gateway crashes — rebuilds traces *bit-identical* to the clean ones,
so every downstream inference result is identical too. Late arrivals
past a forced seal degrade gracefully (counted, dropped or re-run by
policy), never crash.
"""

import os

import pytest

from chaos import assert_traces_identical
from repro.core.service import ServiceConfig
from repro.distributed.network import Network
from repro.edge import (
    GATEWAY_SITE,
    BatchSpool,
    EdgeBatch,
    EdgeNode,
    EdgePlan,
    IngestGateway,
    edge_site_id,
    encode_edge_batch,
    run_ingest,
)
from repro.runtime import Cluster, FaultPlan
from repro.runtime.envelope import EDGE_BATCH, Envelope
from repro.runtime.transport import InProcessTransport
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import Reading
from repro.sim.vendor import FeedNoise, VendorFeed
from repro.workloads.monitors import DwellTimeQuery
from repro.workloads.scenarios import care_facility_scenario


def reading(time: int, serial: int = 1, reader: int = 3) -> Reading:
    return Reading(time, EPC(TagKind.CASE, serial), reader)


def batch_payload(seq, readings=(), upto=None, edge_id=0, site=0) -> bytes:
    if upto is None:
        upto = max((r.time for r in readings), default=0)
    return encode_edge_batch(EdgeBatch(edge_id, site, seq, upto, tuple(readings)))


def batch_env(payload, edge_id=0) -> Envelope:
    return Envelope(edge_site_id(edge_id), GATEWAY_SITE, EDGE_BATCH, payload, seq=1)


class TestBatchSpool:
    def test_put_load_remove_roundtrip(self, tmp_path):
        spool = BatchSpool(str(tmp_path))
        spool.put(3, b"three")
        spool.put(1, b"one")
        assert spool.pending() == [1, 3]
        assert spool.load(3) == b"three"
        spool.remove(3)
        spool.remove(3)  # idempotent
        assert spool.pending() == [1]

    def test_recover_skips_and_counts_corrupt_files(self, tmp_path):
        spool = BatchSpool(str(tmp_path))
        spool.put(1, b"good")
        spool.put(2, b"torn")
        with open(os.path.join(str(tmp_path), "batch-00000002.col"), "wb") as fh:
            fh.write(b"\x01\x02")  # truncated mid-write
        spool.put(3, b"flipped")
        path = os.path.join(str(tmp_path), "batch-00000003.col")
        blob = bytearray(open(path, "rb").read())
        blob[0] ^= 0x40
        open(path, "wb").write(bytes(blob))
        recovered = spool.recover()
        assert recovered == {1: b"good"}
        assert spool.corruptions == 2

    def test_next_seq_survives_restart_and_corrupt_meta(self, tmp_path):
        spool = BatchSpool(str(tmp_path))
        assert spool.next_seq() == 1  # fresh spool
        spool.set_next_seq(7)
        assert BatchSpool(str(tmp_path)).next_seq() == 7
        with open(os.path.join(str(tmp_path), "meta"), "wb") as fh:
            fh.write(b"\x00")
        spool.put(4, b"x")
        fresh = BatchSpool(str(tmp_path))
        # Corrupt meta: conservative fallback past the highest batch.
        assert fresh.next_seq() == 5
        assert fresh.corruptions == 1


@pytest.fixture(scope="module")
def facility():
    return care_facility_scenario(seed=5, n_residents=5, horizon=700)


class TestVendorFeed:
    def test_clean_feed_reproduces_the_reader_slice(self, facility):
        trace = facility.traces[0]
        reader = VendorFeed.split_trace(trace)[0]
        feed = VendorFeed(trace, reader, seed=1)
        lines = []
        for wall in range(0, trace.horizon + 50, 50):
            lines.extend(feed.emit_until(wall))
        assert feed.exhausted
        got = [l for l in lines if l.startswith("RD,")]
        mask = trace.readers == reader
        assert len(got) == int(mask.sum())
        times = [int(l.split(",")[1]) for l in got]
        assert times == [int(t) for t in trace.times[mask]]
        # keepalives announce monotone progress up to the horizon
        kas = [int(l.split(",")[1]) for l in lines if l.startswith("KA,")]
        assert kas == sorted(kas) and kas[-1] == trace.horizon

    def test_noise_duplicates_and_junk_never_lose_readings(self, facility):
        trace = facility.traces[0]
        reader = VendorFeed.split_trace(trace)[0]
        noise = FeedNoise(duplicate=0.5, junk=0.3, shuffle=0.5)
        feed = VendorFeed(trace, reader, seed=2, noise=noise)
        lines = []
        while not feed.exhausted:
            lines.extend(feed.emit_until(feed._covered + 100))
        mask = trace.readers == reader
        clean = {
            f"RD,{int(t)},{trace.tag_table[i]},{reader}"
            for t, i in zip(trace.times[mask], trace.tag_ids[mask])
        }
        assert clean <= set(lines)  # every true reading still present
        assert len([l for l in lines if l.startswith("RD,")]) > len(clean)

    def test_offline_window_goes_silent_then_burst_replays(self, facility):
        trace = facility.traces[0]
        reader = VendorFeed.split_trace(trace)[0]
        feed = VendorFeed(trace, reader, seed=1, offline=((200, 400),))
        pre = feed.emit_until(150)
        assert any(l.startswith("KA,") for l in pre)
        assert feed.emit_until(250) == []  # offline: total silence
        assert feed.emit_until(399) == []
        burst = feed.emit_until(400)
        mask = (trace.readers == reader) & (trace.times > 150) & (trace.times <= 400)
        assert len([l for l in burst if l.startswith("RD,")]) == int(mask.sum())

    def test_windows_clamped_to_horizon_always_replay(self, facility):
        trace = facility.traces[0]
        reader = VendorFeed.split_trace(trace)[0]
        feed = VendorFeed(trace, reader, seed=1, offline=((100, trace.horizon * 10),))
        feed.emit_until(trace.horizon)
        assert feed.exhausted


class _BlackHole:
    """A transport that swallows everything (no acks ever)."""

    def __init__(self):
        self.sends = 0

    def register(self, site, handler):
        pass

    def send(self, env):
        self.sends += 1


class TestEdgeNode:
    def test_parse_errors_counted_never_fatal(self, tmp_path):
        edge = EdgeNode(0, 0, 3, str(tmp_path))
        for line in ("RD,5,", "RD,x,C-000001,3", "RD,5,Z-1,3", "#junk", "KA,"):
            edge.ingest_line(line)
        edge.ingest_line("RD,5,C-000001,3")
        assert edge.stats.parse_errors == 5
        assert edge.stats.lines == 6

    def test_window_dedup_drops_repeats(self, tmp_path):
        edge = EdgeNode(0, 0, 3, str(tmp_path))
        edge.ingest_line("RD,5,C-000001,3")
        edge.ingest_line("RD,5,C-000001,3")
        edge.ingest_line("RD,6,C-000001,3")
        assert edge.stats.duplicates_dropped == 1

    def test_delivery_and_ack_through_gateway(self, tmp_path):
        transport = InProcessTransport(Network())
        gateway = IngestGateway(1, 100, str(tmp_path / "gw"))
        gateway.bind(transport)
        gateway.expect_edge(0)
        edge = EdgeNode(0, 0, 3, str(tmp_path / "edge"))
        edge.bind(transport)
        edge.ingest_line("RD,5,C-000001,3")
        edge.ingest_line("KA,120")
        edge.pump()
        assert edge.drained  # synchronous transport: sent, acked, done
        assert edge.spool.pending() == []  # acked batches leave the spool
        assert gateway.total_readings == 1
        assert gateway.watermark() == 120
        gateway.close()

    def test_backoff_caps_retransmit_rate(self, tmp_path):
        hole = _BlackHole()
        edge = EdgeNode(0, 0, 3, str(tmp_path), backoff_cap=8)
        edge.bind(hole)
        edge.ingest_line("RD,5,C-000001,3")
        for _ in range(80):
            edge.pump()
        # With delays 1,2,4,8,8,... (plus jitter) 80 silent rounds cost
        # a logarithmic-then-capped trickle, not one send per round.
        assert 1 <= edge.stats.sends <= 16
        assert edge.stats.retransmits == edge.stats.sends - 1

    def test_crash_restart_replays_spool_without_reusing_seqs(self, tmp_path):
        hole = _BlackHole()
        edge = EdgeNode(0, 0, 3, str(tmp_path), max_batch=1)
        edge.bind(hole)
        edge.ingest_line("RD,5,C-000001,3")
        edge.ingest_line("RD,6,C-000002,3")
        edge.pump()
        assert len(edge.spool.pending()) == 2
        edge.crash()
        assert edge.stats.restarts == 1
        assert not edge.drained  # the queue survived
        # Deliver for real now: gateway sees both readings exactly once.
        transport = InProcessTransport(Network())
        gateway = IngestGateway(1, 100, str(tmp_path / "gw"))
        gateway.bind(transport)
        gateway.expect_edge(0)
        edge.bind(transport)
        edge.pump()
        assert edge.drained
        assert gateway.total_readings == 2
        # A post-restart batch continues the sequence, never reuses one.
        edge.ingest_line("RD,7,C-000003,3")
        edge.pump()
        assert gateway.stats.duplicate_batches == 0
        assert gateway.total_readings == 3
        gateway.close()

    def test_resident_bound_spills_payloads_back_to_disk(self, tmp_path):
        edge = EdgeNode(0, 0, 3, str(tmp_path), max_batch=1, max_resident_batches=2)
        edge.bind(_BlackHole())
        for t in range(5, 11):
            edge.ingest_line(f"RD,{t},C-00000{t % 4},3")
        edge.pump()
        resident = [p for p in edge._unacked.values() if p is not None]
        assert len(edge._unacked) == 6
        assert len(resident) == 2
        for _ in range(40):
            edge.pump()  # resends load the spilled payloads from disk
        assert edge.stats.retransmits > 0


class TestIngestGateway:
    def make(self, tmp_path, **kwargs):
        return IngestGateway(1, 100, str(tmp_path / "gw"), **kwargs)

    def test_duplicate_batches_counted_and_reacked(self, tmp_path):
        ledger = Network()
        gw = self.make(tmp_path, ledger=ledger)
        payload = batch_payload(1, [reading(5)])
        gw.handle(batch_env(payload))
        gw.handle(batch_env(payload))
        assert gw.stats.batches_applied == 1
        assert gw.stats.duplicate_batches == 1
        assert ledger.edge_gauges()["duplicate_batches"] == 1
        assert gw.total_readings == 1
        gw.close()

    def test_out_of_order_batches_buffer_then_drain(self, tmp_path):
        gw = self.make(tmp_path)
        gw.handle(batch_env(batch_payload(3, [reading(30)])))
        gw.handle(batch_env(batch_payload(2, [reading(20)])))
        assert gw.stats.reordered_batches == 2
        assert gw.total_readings == 0  # held until 1 arrives
        gw.handle(batch_env(batch_payload(1, [reading(10)])))
        assert gw.stats.batches_applied == 3
        assert gw.total_readings == 3
        gw.close()

    def test_reorder_overflow_drops_unacked(self, tmp_path):
        gw = self.make(tmp_path, reorder_window=2)
        for seq in (5, 4, 3):
            gw.handle(batch_env(batch_payload(seq, [reading(seq)])))
        assert gw.stats.reorder_overflow == 1  # seq 3 refused, not acked
        gw.close()

    def test_malformed_batch_dropped_without_ack(self, tmp_path):
        gw = self.make(tmp_path)
        gw.handle(batch_env(b"\xff\x00garbage"))
        assert gw.stats.malformed_batches == 1
        assert gw.stats.wal_records == 0
        gw.close()

    def test_silent_edge_holds_the_seal(self, tmp_path):
        gw = self.make(tmp_path)
        gw.expect_edge(0)
        gw.expect_edge(1)
        gw.handle(batch_env(batch_payload(1, [reading(50)], upto=250), edge_id=0))
        gw.advance(300)
        assert gw.sealed_boundary == 0  # edge 1 has said nothing
        gw.handle(
            batch_env(batch_payload(1, [], upto=250, edge_id=1), edge_id=1)
        )
        gw.advance(300)
        assert gw.sealed_boundary == 200  # 300 needs watermark >= 299
        gw.close()

    def test_max_lag_forces_the_seal(self, tmp_path):
        gw = self.make(tmp_path, max_lag=150)
        gw.expect_edge(0)
        gw.advance(200)
        assert gw.sealed_boundary == 0
        gw.advance(260)
        assert gw.sealed_boundary == 100  # 260 - 100 >= 150, forced
        assert gw.stats.forced_seals == 1
        gw.close()

    def test_late_arrival_drop_policy(self, tmp_path):
        ledger = Network()
        gw = self.make(tmp_path, max_lag=0, ledger=ledger)
        gw.expect_edge(0)
        gw.advance(200)  # force-seal windows 100 and 200
        gw.handle(batch_env(batch_payload(1, [reading(150), reading(250)])))
        assert gw.stats.late_readings == 1
        assert gw.stats.late_dropped == 1
        assert gw.total_readings == 1  # 250 staged, 150 gone
        assert ledger.edge_gauges() == {
            "late_readings": 1,
            "late_dropped": 1,
            "window_reruns": 0,
            "duplicate_batches": 0,
        }
        gw.close()

    def test_late_arrival_rerun_policy_amends_recent_windows(self, tmp_path):
        ledger = Network()
        gw = self.make(
            tmp_path, max_lag=0, late_policy="rerun", rerun_window=1, ledger=ledger
        )
        gw.expect_edge(0)
        gw.advance(300)  # sealed through 300
        late_near = reading(250)  # window 300: within rerun_window
        late_far = reading(50)  # window 100: beyond it — dropped
        gw.handle(batch_env(batch_payload(1, [late_near, late_far])))
        assert gw.stats.window_reruns == 1
        assert gw.stats.late_dropped == 1
        assert ledger.edge_gauges()["window_reruns"] == 1
        assert gw.total_readings == 1  # the amended window holds it
        gw.close()

    def test_invalid_late_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="late policy"):
            self.make(tmp_path, late_policy="explode")

    def test_restart_replays_wal_identically(self, tmp_path):
        gw = self.make(tmp_path, max_lag=0)
        gw.expect_edge(0)
        gw.handle(batch_env(batch_payload(2, [reading(150)], upto=180)))
        gw.handle(batch_env(batch_payload(1, [reading(20), reading(120)], upto=90)))
        gw.advance(100)
        before = (gw.sealed_boundary, gw.total_readings, gw.watermark())
        gw.restart()
        assert gw.stats.restarts == 1
        assert (gw.sealed_boundary, gw.total_readings, gw.watermark()) == before
        # Replay preserved delivery state: the old seqs are duplicates.
        gw.handle(batch_env(batch_payload(2, [reading(150)], upto=180)))
        assert gw.stats.duplicate_batches == 1
        gw.close()

    def test_restart_skips_torn_wal_tail(self, tmp_path):
        gw = self.make(tmp_path)
        gw.expect_edge(0)
        gw.handle(batch_env(batch_payload(1, [reading(10)])))
        gw._wal.write(b"\x40\x00\x00\x00torn")  # crash mid-append
        gw._wal.flush()
        gw.restart()
        assert gw.stats.wal_skipped == 1
        assert gw.total_readings == 1
        gw.close()

    def test_restart_keeps_silent_edges_in_the_watermark(self, tmp_path):
        gw = self.make(tmp_path)
        gw.expect_edge(0)
        gw.expect_edge(1)
        gw.handle(batch_env(batch_payload(1, [reading(50)], upto=250), edge_id=0))
        gw.restart()
        gw.advance(300)
        assert gw.sealed_boundary == 0  # edge 1's silence still holds it
        gw.close()


class TestPipeline:
    def test_clean_ingest_rebuilds_identical_traces(self, facility, tmp_path):
        rebuilt, report = run_ingest(facility.traces, 300, str(tmp_path))
        assert_traces_identical(rebuilt, facility.traces)
        assert report.readings == sum(len(t.times) for t in facility.traces)
        assert report.gateway_stats["duplicate_batches"] == 0
        assert report.edge_gauges["late_readings"] == 0

    def test_flaky_everything_still_converges_bit_identical(
        self, facility, tmp_path
    ):
        plan = EdgePlan(
            seed=13,
            noise=FeedNoise(duplicate=0.2, junk=0.1, shuffle=0.4),
            offline={1: (200, 450)},
            link_faults=FaultPlan.chaos(
                13, drop=0.25, duplicate=0.2, delay=0.25, max_delay=3
            ),
            edge_restarts={0: 350},
            gateway_restarts=(500,),
        )
        rebuilt, report = run_ingest(facility.traces, 300, str(tmp_path), plan=plan)
        assert_traces_identical(rebuilt, facility.traces)
        assert report.gateway_stats["restarts"] == 1
        assert any(stats["restarts"] for stats in report.edge_stats)
        assert report.gateway_stats["duplicate_batches"] > 0
        assert report.recovery_rounds is not None
        assert report.edge_gauges["late_readings"] == 0  # seals were held

    @staticmethod
    def busy_edge(trace) -> int:
        """The edge whose reader has the most readings after t=300 —
        taking *it* offline guarantees a late-landing burst."""
        readers = VendorFeed.split_trace(trace)
        return max(
            range(len(readers)),
            key=lambda i: int(
                ((trace.readers == readers[i]) & (trace.times >= 300)).sum()
            ),
        )

    def test_forced_seals_surface_late_arrivals_gracefully(
        self, facility, tmp_path
    ):
        # An offline reader plus a tight max_lag forces seals past its
        # backlog; the burst replay then lands late. Degradation is
        # counted and bounded — never a crash, never a stall.
        plan = EdgePlan(
            seed=3, offline={self.busy_edge(facility.traces[0]): (150, 700)}
        )
        rebuilt, report = run_ingest(
            facility.traces, 300, str(tmp_path), plan=plan, max_lag=50
        )
        assert report.gateway_stats["forced_seals"] > 0
        assert report.edge_gauges["late_readings"] > 0
        lost = report.edge_gauges["late_dropped"]
        assert lost > 0  # drop policy: late readings are gone
        assert report.readings == sum(len(t.times) for t in facility.traces) - lost

    def test_rerun_policy_recovers_recent_late_windows(self, facility, tmp_path):
        plan = EdgePlan(
            seed=3, offline={self.busy_edge(facility.traces[0]): (150, 700)}
        )
        rebuilt, report = run_ingest(
            facility.traces,
            300,
            str(tmp_path),
            plan=plan,
            max_lag=50,
            late_policy="rerun",
            rerun_window=100,
        )
        # A rerun window covering the whole offline lag recovers every
        # late reading: the rebuilt traces converge despite forced seals.
        assert report.gateway_stats["forced_seals"] > 0
        assert report.edge_gauges["window_reruns"] > 0
        assert report.edge_gauges["late_dropped"] == 0
        assert_traces_identical(rebuilt, facility.traces)


class TestCareFacility:
    def test_exit_monitoring_through_the_edge_plane(self, tmp_path):
        scenario = care_facility_scenario(seed=11)
        rebuilt, _ = run_ingest(
            scenario.traces,
            300,
            str(tmp_path),
            plan=EdgePlan(
                seed=11, noise=FeedNoise(duplicate=0.2, junk=0.1, shuffle=0.3)
            ),
        )
        assert_traces_identical(rebuilt, scenario.traces)
        config = ServiceConfig(
            run_interval=300, emit_events=True, event_period=5
        )
        with Cluster(rebuilt, config) as cluster:
            cluster.add_query(
                "exit-dwell",
                lambda site: DwellTimeQuery(scenario.dwell_limit),
            )
            cluster.run(scenario.horizon)
            violations = [
                v
                for node in cluster.nodes
                for v in node.queries["exit-dwell"].violations()
            ]
        at_exit = scenario.exit_violations(violations)
        flagged = {v[0] for v in at_exit}
        assert {tag for tag, _ in scenario.wanderers} <= flagged
        assert not flagged & {tag for tag, _ in scenario.returners}
