"""Tests for the distributed layer: network, ONS, tag memory, sharing,
coordination, and the centralized baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.service import ServiceConfig
from repro.distributed.centralized import CentralizedDeployment, merge_sites
from repro.distributed.coordinator import DistributedDeployment
from repro.distributed.network import Network
from repro.distributed.ons import ObjectNamingService
from repro.distributed.sharing import (
    SharedStateBundle,
    apply_diff,
    byte_distance,
    centroid_compress,
    state_diff,
)
from repro.distributed.tagmem import TagMemory, TagMemoryError
from repro.sim.tags import EPC, TagKind


class TestNetwork:
    def test_accounting(self):
        net = Network()
        net.send(0, 1, "x", b"12345")
        net.send(1, 0, "x", b"123")
        net.send(0, 2, "y", b"1")
        assert net.bytes_by_kind["x"] == 8
        assert net.total_bytes() == 9
        assert net.total_messages() == 3

    def test_optional_log(self):
        net = Network(keep_log=True)
        net.send(0, 1, "x", b"a")
        assert len(net.log) == 1 and net.log[0].payload == b"a"

    def test_per_link_counters(self):
        net = Network()
        net.send(0, 1, "x", b"12345")
        net.send(0, 1, "y", b"123")
        net.send(1, 0, "x", b"12")
        net.send(0, -2, "ons-lookup", b"1")
        assert net.link_bytes(0, 1) == 8
        assert net.link_messages(0, 1) == 2
        assert net.link_bytes(1, 0) == 2
        assert net.links() == [(0, -2), (0, 1), (1, 0)]
        assert net.per_link_rows() == [(0, -2, 1, 1), (0, 1, 2, 8), (1, 0, 1, 2)]
        # per-link totals and per-kind totals agree
        assert sum(net.bytes_by_link.values()) == net.total_bytes()
        assert sum(net.messages_by_link.values()) == net.total_messages()


class TestONS:
    def test_lookup_and_update(self):
        net = Network()
        ons = ObjectNamingService(net)
        tag = EPC(TagKind.ITEM, 7)
        assert ons.lookup(tag, asking_site=1) is None
        ons.update(tag, 0)
        assert ons.lookup(tag, asking_site=1) == 0
        assert net.messages_by_kind["ons-update"] == 1
        assert net.messages_by_kind["ons-lookup"] == 2


class TestTagMemory:
    def test_write_read(self):
        mem = TagMemory(capacity_bytes=64)
        tag = EPC(TagKind.ITEM, 0)
        mem.write(tag, "inference", b"x" * 40)
        assert mem.read(tag, "inference") == b"x" * 40
        assert mem.used(tag) == 40

    def test_capacity_enforced(self):
        mem = TagMemory(capacity_bytes=64)
        tag = EPC(TagKind.ITEM, 0)
        mem.write(tag, "a", b"x" * 40)
        with pytest.raises(TagMemoryError):
            mem.write(tag, "b", b"y" * 40)
        # Overwriting the same section frees its old bytes first.
        mem.write(tag, "a", b"z" * 60)
        assert mem.used(tag) == 60


class TestSharing:
    @given(
        base=st.binary(min_size=0, max_size=60),
        target=st.binary(min_size=0, max_size=60),
    )
    @settings(max_examples=50)
    def test_diff_round_trip(self, base, target):
        assert apply_diff(base, state_diff(base, target)) == target

    def test_byte_distance_zero_for_identical(self):
        assert byte_distance(b"abcdef", b"abcdef") == 0
        assert byte_distance(b"", b"abc") == 3

    def test_centroid_bundle_lossless(self):
        states = {
            EPC(TagKind.ITEM, i): bytes([1, 2, 3, i, 5, 6, 7, 8]) for i in range(6)
        }
        bundle = centroid_compress(states)
        assert bundle.reconstruct() == states

    def test_sharing_compresses_similar_states(self):
        common = bytes(range(48))
        states = {
            EPC(TagKind.ITEM, i): common + bytes([i]) for i in range(12)
        }
        bundle = centroid_compress(states)
        raw = sum(len(s) for s in states.values())
        assert bundle.byte_size() < raw / 2

    def test_bundle_wire_round_trip(self):
        states = {EPC(TagKind.ITEM, i): bytes([i] * 10) for i in range(3)}
        bundle = centroid_compress(states)
        back = SharedStateBundle.from_bytes(bundle.to_bytes())
        assert back.reconstruct() == states

    def test_large_bundle_lossless_and_deterministic(self):
        # Above _EXACT_SELECTION_LIMIT the centroid is chosen from a
        # stride sample; the bundle must stay lossless, deterministic,
        # and still well-compressed for similar states.
        common = bytes(range(64))
        states = {
            EPC(TagKind.ITEM, i): common + bytes([i % 256, (i * 7) % 256])
            for i in range(100)
        }
        bundle = centroid_compress(states)
        assert bundle.reconstruct() == states
        assert bundle.to_bytes() == centroid_compress(dict(states)).to_bytes()
        raw = sum(len(s) for s in states.values())
        assert bundle.byte_size() < raw / 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid_compress({})


@pytest.fixture(scope="module")
def deployments(multi_site_chain):
    config = ServiceConfig(run_interval=300, recent_history=600,
                           truncation="cr", emit_events=False)
    out = {}
    for strategy in ("none", "collapsed"):
        dep = DistributedDeployment(multi_site_chain, config, strategy=strategy)
        dep.run()
        out[strategy] = dep
    central = CentralizedDeployment(multi_site_chain, config)
    central.run()
    out["centralized"] = central
    return out


class TestDistributed:
    def test_none_ships_zero_bytes(self, deployments):
        assert deployments["none"].communication_bytes() == 0

    def test_collapsed_beats_none_on_accuracy(self, deployments):
        assert (
            deployments["collapsed"].containment_error()
            <= deployments["none"].containment_error() + 1e-9
        )

    def test_collapsed_far_cheaper_than_centralized(self, deployments):
        collapsed = deployments["collapsed"].communication_bytes()
        central = deployments["centralized"].communication_bytes()
        assert 0 < collapsed < central

    def test_migrations_recorded(self, deployments):
        migrations = deployments["collapsed"].migrations
        assert migrations
        for event in migrations[:20]:
            assert event.src != event.dst
            assert event.bytes_sent > 0

    def test_centralized_accuracy_best_or_close(self, deployments):
        assert deployments["centralized"].containment_error() <= (
            deployments["none"].containment_error() + 0.05
        )


class TestMergeSites:
    def test_merged_trace_preserves_readings(self, multi_site_chain):
        trace, truth, offsets = merge_sites(multi_site_chain)
        assert len(trace) == sum(len(t) for t in multi_site_chain.traces)
        assert offsets[0] == 0
        assert trace.layout.n_locations == sum(
            l.n_locations for l in multi_site_chain.layouts
        )

    def test_truth_remapped_consistently(self, multi_site_chain):
        trace, truth, offsets = merge_sites(multi_site_chain)
        tag = multi_site_chain.truth.cases()[0]
        for probe in (50, 400, 900):
            original = multi_site_chain.truth.location_at(tag, probe)
            merged = truth.location_at(tag, probe)
            if original.site < 0:
                assert merged.site < 0
            else:
                assert merged.place == offsets[original.site] + original.place
