"""Tests for world state, warehouse lifecycle, and anomaly injection."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.layout import warehouse_layout
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import AWAY, Location
from repro.sim.warehouse import Warehouse, WarehouseParams
from repro.sim.world import World


def make_world_with_case():
    world = World()
    case = EPC(TagKind.CASE, 0)
    items = [EPC(TagKind.ITEM, i) for i in range(3)]
    world.register(case, 0)
    for item in items:
        world.register(item, 0, container=case)
    return world, case, items


class TestWorld:
    def test_move_is_recursive(self):
        world, case, items = make_world_with_case()
        world.move(case, 5, Location(0, 2))
        for item in items:
            assert world.location(item) == Location(0, 2)
            assert world.truth.location_at(item, 5) == Location(0, 2)

    def test_set_container_moves_between_cases(self):
        world, case, items = make_world_with_case()
        other = EPC(TagKind.CASE, 1)
        world.register(other, 0)
        world.set_container(items[0], 3, other, anomalous=True)
        assert world.container(items[0]) == other
        assert items[0] not in world.items_in(case)
        assert items[0] in world.items_in(other)
        assert len(world.truth.changes) == 1
        assert world.truth.changes[0].old_container == case

    def test_container_kind_check(self):
        world, case, items = make_world_with_case()
        with pytest.raises(ValueError):
            world.set_container(case, 1, case)  # case cannot contain case

    def test_register_twice_rejected(self):
        world, case, _ = make_world_with_case()
        with pytest.raises(ValueError):
            world.register(case, 1)

    def test_ground_truth_history_preserved(self):
        world, case, items = make_world_with_case()
        world.move(case, 5, Location(0, 1))
        world.move(case, 10, Location(0, 3))
        assert world.truth.location_at(case, 7) == Location(0, 1)
        assert world.truth.location_at(case, 12) == Location(0, 3)
        assert world.truth.location_at(case, 0) == AWAY


class TestWarehouse:
    def run_one_pallet(self, params=None):
        sim = Simulator()
        world = World()
        layout = warehouse_layout(n_shelves=2)
        departures = []
        wh = Warehouse(
            sim,
            0,
            layout,
            params or WarehouseParams(shelf_dwell_mean=50, shelf_dwell_jitter=5,
                                      cases_per_outgoing_pallet=2),
            world,
            lambda site, pallet, cases, t: departures.append((pallet, tuple(cases), t)),
            seed=1,
        )
        pallet = EPC(TagKind.PALLET, 0)
        cases = [EPC(TagKind.CASE, i) for i in range(2)]
        world.register(pallet, 0)
        for case in cases:
            world.register(case, 0, container=pallet)
            for j in range(2):
                world.register(EPC(TagKind.ITEM, case.serial * 2 + j), 0, container=case)
        wh.receive(pallet, cases, 0)
        sim.run(until=500)
        return world, layout, departures, cases

    def test_full_lifecycle(self):
        world, layout, departures, cases = self.run_one_pallet()
        assert len(departures) == 1
        pallet, dep_cases, t = departures[0]
        assert set(dep_cases) == set(cases)
        # All tags end up away after departure.
        for case in cases:
            assert world.location(case) == AWAY
        # The trajectory passed through entry, belt, one shelf, exit.
        truth = world.truth
        visited = {loc.place for _, loc in truth.locations[cases[0]].breakpoints()
                   if loc != AWAY}
        assert layout.entry in visited
        assert layout.belt in visited
        assert layout.exit in visited
        assert visited & set(layout.shelf_indices)

    def test_cases_repacked_onto_pallet(self):
        world, _, departures, cases = self.run_one_pallet()
        pallet, dep_cases, _ = departures[0]
        for case in dep_cases:
            assert world.container(case) == pallet

    def test_belt_serializes_cases(self):
        world, layout, _, cases = self.run_one_pallet()
        truth = world.truth
        spans = []
        for case in cases:
            for (t, loc), (t2, _) in zip(
                truth.locations[case].breakpoints(),
                list(truth.locations[case].breakpoints())[1:],
            ):
                if loc != AWAY and loc.place == layout.belt:
                    spans.append((t, t2))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2  # no two cases on the belt at once

    def test_anomaly_moves_item_between_shelved_cases(self):
        sim = Simulator()
        world = World()
        layout = warehouse_layout(n_shelves=2)
        wh = Warehouse(
            sim, 0, layout,
            WarehouseParams(shelf_dwell_mean=400, shelf_dwell_jitter=10,
                            cases_per_outgoing_pallet=2),
            world, lambda *a: None, seed=2,
        )
        pallet = EPC(TagKind.PALLET, 0)
        cases = [EPC(TagKind.CASE, i) for i in range(2)]
        world.register(pallet, 0)
        for case in cases:
            world.register(case, 0, container=pallet)
            for j in range(2):
                world.register(EPC(TagKind.ITEM, case.serial * 2 + j), 0, container=case)
        wh.receive(pallet, cases, 0)
        sim.run(until=100)  # both cases now shelved
        assert wh.inject_containment_change()
        assert len(world.truth.changes) == 1
        change = world.truth.changes[0]
        assert change.new_container in cases
        assert change.old_container in cases
        assert change.new_container != change.old_container

    def test_removal_sends_item_away(self):
        sim = Simulator()
        world = World()
        layout = warehouse_layout(n_shelves=2)
        wh = Warehouse(
            sim, 0, layout,
            WarehouseParams(shelf_dwell_mean=400, shelf_dwell_jitter=10,
                            cases_per_outgoing_pallet=1),
            world, lambda *a: None, seed=3,
        )
        pallet = EPC(TagKind.PALLET, 0)
        case = EPC(TagKind.CASE, 0)
        item = EPC(TagKind.ITEM, 0)
        world.register(pallet, 0)
        world.register(case, 0, container=pallet)
        world.register(item, 0, container=case)
        wh.receive(pallet, [case], 0)
        sim.run(until=100)
        assert wh.remove_random_item()
        assert world.location(item) == AWAY
        assert world.container(item) is None

    def test_params_validation(self):
        with pytest.raises(ValueError):
            WarehouseParams(shelf_dwell_mean=10, shelf_dwell_jitter=20)
