"""Tests for the SMURF and SMURF* baselines."""

import numpy as np
import pytest

from repro.baselines.smurf import SmurfConfig, SmurfSmoother, smooth_trace
from repro.baselines.smurf_star import SmurfStar
from repro.metrics.accuracy import containment_error_rate
from repro.sim.lab import generate_lab_trace
from repro.sim.tags import TagKind


@pytest.fixture(scope="module")
def lab_stable():
    return generate_lab_trace("T1", seed=9)


@pytest.fixture(scope="module")
def lab_changes():
    return generate_lab_trace("T5", seed=9)


class TestSmurf:
    def test_estimates_cover_horizon(self, lab_stable):
        tag = lab_stable.trace.tags(TagKind.CASE)[0]
        est = SmurfSmoother(lab_stable.trace).smooth(tag)
        assert est.locations.shape == (lab_stable.trace.horizon,)
        assert est.window_sizes.shape == (lab_stable.trace.horizon,)

    def test_tracks_dominant_reader_on_shelf(self, lab_stable):
        truth = lab_stable.truth
        tag = lab_stable.trace.tags(TagKind.CASE)[0]
        est = SmurfSmoother(lab_stable.trace).smooth(tag)
        # Mid-shelf dwell: the smoothed location matches ground truth.
        loc = truth.location_at(tag, 500)
        assert loc.site == 0
        window = est.locations[450:550]
        assert (window == loc.place).mean() > 0.5

    def test_unread_tag_stays_unknown(self, lab_stable):
        from repro.sim.tags import EPC

        est = SmurfSmoother(lab_stable.trace).smooth(EPC(TagKind.ITEM, 99999))
        assert (est.locations == -1).all()
        assert est.read_rate == 0.0

    def test_window_adapts_within_bounds(self, lab_stable):
        config = SmurfConfig(min_window=10, max_window=80)
        tag = lab_stable.trace.tags(TagKind.ITEM)[0]
        est = SmurfSmoother(lab_stable.trace, config).smooth(tag)
        assert est.window_sizes.min() >= 10
        assert est.window_sizes.max() <= 80

    def test_smooth_trace_covers_all_tags(self, lab_stable):
        estimates = smooth_trace(lab_stable.trace)
        assert set(estimates) == set(lab_stable.trace.tags())


class TestSmurfStar:
    def test_containment_reasonable_on_clean_trace(self, lab_stable):
        result = SmurfStar(lab_stable.trace).run()
        err = containment_error_rate(
            lab_stable.truth, result.containment, 880, lab_stable.truth.items()
        )
        assert err <= 0.30  # heuristic baseline: better than chance, worse than RFINFER

    def test_rfinfer_beats_smurf_star(self, lab_stable):
        from repro.core.likelihood import TraceWindow
        from repro.core.rfinfer import RFInfer

        smurf = SmurfStar(lab_stable.trace).run()
        smurf_err = containment_error_rate(
            lab_stable.truth, smurf.containment, 880, lab_stable.truth.items()
        )
        window = TraceWindow.from_range(lab_stable.trace, 0, 900)
        rf = RFInfer(window).run()
        rf_err = containment_error_rate(lab_stable.truth, rf.containment, 880)
        assert rf_err <= smurf_err

    def test_reports_some_changes_on_change_trace(self, lab_changes):
        result = SmurfStar(lab_changes.trace).run()
        assert isinstance(result.changes, list)

    def test_location_error_bounded(self, lab_stable):
        result = SmurfStar(lab_stable.trace).run()
        err = result.location_error(lab_stable.truth, 0, 0, 880)
        assert 0.0 <= err <= 1.0
