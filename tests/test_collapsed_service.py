"""Tests for collapsed state and the streaming inference service."""

import pytest
from hypothesis import given, strategies as st

from repro.core.collapsed import CollapsedState
from repro.core.service import ServiceConfig, StreamingInference
from repro.sim.tags import EPC, TagKind


epc_strategy = st.builds(
    EPC, st.sampled_from([TagKind.CASE, TagKind.ITEM]), st.integers(0, 10**6)
)


class TestCollapsedState:
    @given(
        tag=epc_strategy,
        weights=st.dictionaries(
            st.builds(EPC, st.just(TagKind.CASE), st.integers(0, 1000)),
            st.floats(-1e6, 1e6, width=32),
            max_size=8,
        ),
        changed_at=st.one_of(st.none(), st.integers(0, 10**6)),
    )
    def test_round_trip(self, tag, weights, changed_at):
        state = CollapsedState(tag, weights, None, changed_at)
        back = CollapsedState.from_bytes(state.to_bytes())
        assert back.tag == tag
        assert back.changed_at == changed_at
        assert set(back.weights) == set(weights)
        for k, v in weights.items():
            assert back.weights[k] == pytest.approx(v, rel=1e-6)

    def test_merge_adds_weights(self):
        a = EPC(TagKind.CASE, 1)
        b = EPC(TagKind.CASE, 2)
        state = CollapsedState(EPC(TagKind.ITEM, 0), {a: 2.0, b: -1.0})
        merged = state.merge({a: 3.0})
        assert merged[a] == pytest.approx(5.0)
        assert merged[b] == pytest.approx(-1.0)

    def test_best_container(self):
        a, b = EPC(TagKind.CASE, 1), EPC(TagKind.CASE, 2)
        state = CollapsedState(EPC(TagKind.ITEM, 0), {a: -5.0, b: -2.0})
        assert state.best_container() == b

    def test_byte_size_is_compact(self):
        """Collapsed state is 'a few numbers for each object' (§4.1)."""
        cands = {EPC(TagKind.CASE, i): float(i) for i in range(5)}
        state = CollapsedState(EPC(TagKind.ITEM, 12), cands, EPC(TagKind.CASE, 0), 17)
        assert state.byte_size() < 64


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(run_interval=0)
        with pytest.raises(ValueError):
            ServiceConfig(run_interval=300, recent_history=100)
        with pytest.raises(ValueError):
            ServiceConfig(truncation="bogus")


class TestStreamingInference:
    def test_runs_scheduled_at_boundaries(self, small_chain):
        service = StreamingInference(
            small_chain.trace,
            ServiceConfig(run_interval=300, recent_history=300, emit_events=False),
        )
        service.run_until(900)
        assert [r.time for r in service.runs] == [300, 600, 900]

    def test_containment_estimates_accumulate(self, small_chain):
        service = StreamingInference(
            small_chain.trace,
            ServiceConfig(run_interval=300, recent_history=600, emit_events=False),
        )
        service.run_until(900)
        items = small_chain.truth.items()
        estimated = [i for i in items if service.containment_at(i) is not None]
        assert len(estimated) >= 0.9 * len(items)

    def test_cr_windows_smaller_than_all(self, small_chain):
        all_svc = StreamingInference(
            small_chain.trace,
            ServiceConfig(run_interval=300, recent_history=300,
                          truncation="all", emit_events=False),
        )
        cr_svc = StreamingInference(
            small_chain.trace,
            ServiceConfig(run_interval=300, recent_history=300,
                          truncation="cr", emit_events=False),
        )
        all_svc.run_until(900)
        cr_svc.run_until(900)
        assert cr_svc.runs[-1].window_rows <= all_svc.runs[-1].window_rows

    def test_events_emitted_in_order_and_on_site(self, small_chain):
        service = StreamingInference(
            small_chain.trace,
            ServiceConfig(run_interval=300, recent_history=300, event_period=5),
        )
        service.run_until(600)
        assert service.events
        times = [e.time for e in service.events]
        assert max(times) < 600
        for event in service.events[:200]:
            assert 0 <= event.place < small_chain.trace.layout.n_locations

    def test_export_import_state_round_trip(self, small_chain):
        service = StreamingInference(
            small_chain.trace,
            ServiceConfig(run_interval=300, recent_history=300, emit_events=False),
        )
        service.run_until(600)
        item = next(
            t for t in small_chain.truth.items()
            if service.containment_at(t) is not None
        )
        state = service.export_state(item)
        assert state.tag == item
        assert state.weights
        fresh = StreamingInference(
            small_chain.trace,
            ServiceConfig(run_interval=300, recent_history=300, emit_events=False),
        )
        fresh.absorb_state(state)
        assert fresh.prior_weights[item]
        assert fresh.containment_at(item) == state.container

    def test_retained_epoch_count(self, small_chain):
        service = StreamingInference(
            small_chain.trace,
            ServiceConfig(run_interval=300, recent_history=300,
                          truncation="window", window_size=450, emit_events=False),
        )
        service.run_until(900)
        assert service.retained_epoch_count(900) == 450
