"""The observability plane's unit surface: registry encoding
determinism, flight-recorder bounding, causal span parentage, the
telemetry facade's disabled-by-default contract, the compat properties
that migrated the planes' ad-hoc counters, and the summary CLI.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.network import Network
from repro.archive.tiers import TierStats
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    FlightRecorder,
    MetricsRegistry,
    Telemetry,
    get_telemetry,
    install,
    telemetry_session,
    uninstall,
    write_jsonl,
)
from repro.obs.spans import NULL_SPAN
from repro.obs.summary import main as summary_main


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc()
        reg.counter("runs").inc(3)
        assert reg.counter("runs").value == 4
        reg.gauge("depth").set(7)
        reg.gauge("depth").add(-2)
        assert reg.gauge("depth").value == 5
        hist = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 5.0):
            hist.observe(v)
        # ≤-bound semantics: 0.1 lands in the first bucket; 5.0 overflows.
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4 and hist.sum == pytest.approx(5.65)

    def test_labels_key_distinct_series_and_kwarg_order_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("c", site=0) is not reg.counter("c", site=1)
        assert reg.counter("c", site=0) is not reg.counter("c")
        assert reg.counter("c", a=1, b=2) is reg.counter("c", b=2, a=1)

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="different"):
            reg.histogram("lat", buckets=(0.5, 1.0))
        with pytest.raises(ValueError, match="increasing"):
            reg.histogram("bad", buckets=(1.0, 0.5))

    def test_quantile_is_bucket_upper_bound(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        assert hist.quantile(0.5) == 0.0  # empty
        for _ in range(99):
            hist.observe(0.0002)
        hist.observe(9.0)
        assert hist.quantile(0.5) == 0.00025
        assert hist.quantile(1.0) == DEFAULT_LATENCY_BUCKETS[-1]

    def test_encode_is_canonical_across_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x", site=1).inc(2)
        a.counter("y").inc(5)
        a.gauge("g").set(3)
        b.gauge("g").set(3)
        b.counter("y").inc(5)
        b.counter("x", site=1).inc(2)
        assert a.encode() == b.encode()

    def test_decode_encode_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("msgs", kind="data").inc(10)
        reg.gauge("depth", site=2).set(1.5)
        reg.histogram("lat", site=0).observe(0.003)
        assert MetricsRegistry.decode(reg.encode()).encode() == reg.encode()

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.dictionaries(
                    st.sampled_from(["k", "l"]), st.integers(0, 3), max_size=2
                ),
                st.integers(-100, 100),
            ),
            max_size=30,
        )
    )
    def test_counter_encoding_order_free_and_round_trips(self, ops):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for name, labels, delta in ops:
            forward.counter(name, **labels).inc(delta)
        for name, labels, delta in reversed(ops):
            backward.counter(name, **labels).inc(delta)
        assert forward.encode() == backward.encode()
        assert MetricsRegistry.decode(forward.encode()).encode() == forward.encode()

    def test_merge_adds_counters_and_histograms_last_writes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.counter("c").inc(3)
        b.gauge("g").set(9)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.merge(b.snapshot())
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 9
        hist = a.histogram("h", buckets=(1.0,))
        assert hist.counts == [1, 1] and hist.count == 2

    def test_drain_clears_and_never_double_counts(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(4)
        parent = MetricsRegistry()
        parent.merge(reg.drain())
        parent.merge(reg.drain())  # second drain is empty
        assert parent.counter("c").value == 4
        assert reg.snapshot() == {"counters": [], "gauges": [], "histograms": []}


class TestFlightRecorder:
    def test_ring_stays_bounded_under_sustained_load(self):
        rec = FlightRecorder(capacity=64)
        for i in range(10_000):
            rec.record_state("test", "tick", i=i)
        assert len(rec) == 64
        assert rec.total_recorded == 10_000
        kept = rec.entries()
        assert [e["i"] for e in kept] == list(range(10_000 - 64, 10_000))

    def test_tail_filters_on_field_equality(self):
        rec = FlightRecorder(capacity=16)
        for w in (0, 1, 0, 1, 0):
            rec.record_state("process", "cmd", worker=w)
        assert len(rec.tail(10, worker=0)) == 3
        assert rec.tail(2, worker=1) == rec.tail(10, worker=1)[-2:]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            FlightRecorder(capacity=0)

    def test_dump_is_parseable_jsonl(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        rec.record_state("edge", "seal", boundary=300)
        rec.record({"type": "span", "plane": "site", "name": "queries"})
        path = rec.dump(str(tmp_path / "flight.jsonl"))
        lines = [json.loads(line) for line in open(path)]
        assert [e["type"] for e in lines] == ["state", "span"]
        assert lines[0]["boundary"] == 300


class TestTracer:
    def test_span_nesting_sets_parent_ids(self):
        tel = Telemetry(capacity=32)
        with tel.span("federation", "tick", boundary=300):
            with tel.span("inference", "run", site=1) as inner:
                inner.set(rows=10)
        spans = [e for e in tel.recorder.entries() if e["type"] == "span"]
        # Inner span finishes (and records) first.
        inner_entry, outer_entry = spans
        assert inner_entry["name"] == "run"
        assert inner_entry["parent_id"] == outer_entry["span_id"]
        assert outer_entry["parent_id"] == 0  # root: no enclosing span
        assert inner_entry["rows"] == 10
        assert inner_entry["duration"] >= 0.0

    def test_emit_records_pre_timed_span_under_explicit_parent(self):
        tel = Telemetry(capacity=32)
        parent = tel.emit_span("inference", "run", 0.5, site=1)
        child = tel.emit_span("inference", "phase.e_step", 0.3, parent_id=parent)
        assert parent > 0 and child > parent
        spans = tel.recorder.entries()
        assert spans[1]["parent_id"] == parent
        assert spans[1]["duration"] == 0.3

    def test_disabled_telemetry_returns_null_span_and_records_nothing(self):
        tel = Telemetry(enabled=False, capacity=4)
        span = tel.span("edge", "pump_round")
        assert span is NULL_SPAN
        with span as s:
            s.set(anything=1)
        assert tel.emit_span("x", "y", 1.0) == 0
        tel.record_state("x", "y")
        tel.counter("c").inc()  # registry still works when disabled
        assert len(tel.recorder) == 0
        assert tel.dump() is None


class TestTelemetryGlobal:
    def test_default_is_disabled(self):
        assert get_telemetry().enabled is False

    def test_install_uninstall_cycle(self):
        tel = install(Telemetry(capacity=8))
        try:
            assert get_telemetry() is tel
        finally:
            uninstall()
        assert get_telemetry().enabled is False

    def test_session_scopes_install(self):
        with telemetry_session(capacity=8) as tel:
            assert get_telemetry() is tel and tel.enabled
        assert get_telemetry().enabled is False

    def test_dump_writes_meta_entries_and_metrics(self, tmp_path):
        with telemetry_session(capacity=8, dump_dir=str(tmp_path)) as tel:
            tel.record_state("edge", "seal", boundary=300)
            tel.counter("sealed").inc(5)
            path = tel.dump(reason="demo")
        lines = [json.loads(line) for line in open(path)]
        assert lines[0]["type"] == "meta" and lines[0]["reason"] == "demo"
        assert lines[1]["name"] == "seal"
        assert lines[-1]["type"] == "metrics"
        assert ["sealed", [], 5] in lines[-1]["registry"]["counters"]


class TestCompatProperties:
    """The migrated ad-hoc counters keep their legacy read/write API
    but live on the unified registry."""

    def test_network_gauges_land_on_registry(self):
        ledger = Network()
        ledger.plan_operators_built += 3
        ledger.note_frontend_retransmits(2)
        ledger.note_edge_late(1, dropped=0)
        assert ledger.registry.counter("plan_operators_built").value == 3
        assert ledger.registry.counter("frontend_retransmits").value == 2
        assert ledger.frontend_retransmits == 2
        assert ledger.edge_late_readings == 1 and ledger.edge_late_dropped == 0

    def test_network_pruning_counters_are_per_site_series(self):
        ledger = Network()
        ledger.note_pruning(0, pruned=4, full=1)
        ledger.note_pruning(1, pruned=2, full=3)
        ledger.note_pruning(0, pruned=1, full=0)
        assert ledger.pruned_tags == {0: 5, 1: 2}
        assert ledger.full_inference_tags == {0: 1, 1: 3}
        assert ledger.registry.counter("pruned_tags", site=0).value == 5
        assert ledger.pruning_gauges() == {
            "pruned_tags": {0: 5, 1: 2},
            "full_inference_tags": {0: 1, 1: 3},
        }

    def test_tier_stats_back_onto_registry(self):
        stats = TierStats()
        stats.spills += 2
        stats.corruptions += 1
        assert stats.registry.counter("spills").value == 2
        assert stats.as_dict()["spills"] == 2
        assert stats.as_dict()["corruptions"] == 1
        assert stats.as_dict()["loads"] == 0


class TestSummaryCli:
    def test_summarizes_a_demo_dump(self, tmp_path, capsys):
        with telemetry_session(capacity=64, dump_dir=str(tmp_path)) as tel:
            parent = tel.emit_span("inference", "run", 0.25, site=0)
            tel.emit_span("inference", "phase.e_step", 0.2, parent_id=parent, site=0)
            with tel.span("federation", "tick", boundary=300):
                pass
            tel.record_state("federation", "site.crash", site=1)
            tel.counter("inference_runs", site=0).inc()
            path = tel.dump(reason="demo")
        assert summary_main([path]) == 0
        out = capsys.readouterr().out
        assert "per-plane spans" in out
        assert "inference" in out and "federation" in out
        assert "site.crash" in out
        assert "inference_runs{site=0}" in out

    def test_plane_filter_and_missing_file(self, tmp_path, capsys):
        with telemetry_session(capacity=8, dump_dir=str(tmp_path)) as tel:
            tel.emit_span("edge", "pump_round", 0.1)
            path = tel.dump(reason="demo")
        assert summary_main([path, "--plane", "edge"]) == 0
        assert "edge" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            summary_main([str(tmp_path / "missing.jsonl"), "--bogus"])
