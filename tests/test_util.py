"""Tests for repro._util: intervals, encoding, log math, RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util.encoding import ByteReader, ByteWriter
from repro._util.intervals import IntervalMap
from repro._util.logmath import log_normalize, logsumexp
from repro._util.rng import spawn_rng


class TestIntervalMap:
    def test_default_before_first_breakpoint(self):
        imap = IntervalMap(default="nowhere")
        imap.set_from(10, "a")
        assert imap.value_at(9) == "nowhere"
        assert imap.value_at(10) == "a"
        assert imap.value_at(10_000) == "a"

    def test_multiple_breakpoints(self):
        imap = IntervalMap()
        imap.set_from(0, "a")
        imap.set_from(5, "b")
        imap.set_from(9, "c")
        assert [imap.value_at(t) for t in (0, 4, 5, 8, 9)] == ["a", "a", "b", "b", "c"]

    def test_same_time_overwrites(self):
        imap = IntervalMap()
        imap.set_from(3, "a")
        imap.set_from(3, "b")
        assert imap.value_at(3) == "b"
        assert len(imap) == 1

    def test_redundant_value_is_coalesced(self):
        imap = IntervalMap()
        imap.set_from(0, "a")
        imap.set_from(5, "a")
        assert len(imap) == 1

    def test_rejects_out_of_order(self):
        imap = IntervalMap()
        imap.set_from(5, "a")
        with pytest.raises(ValueError):
            imap.set_from(4, "b")

    def test_segments_cover_range_exactly(self):
        imap = IntervalMap(default="d")
        imap.set_from(5, "a")
        imap.set_from(12, "b")
        segs = list(imap.segments(0, 20))
        assert segs == [(0, 5, "d"), (5, 12, "a"), (12, 20, "b")]
        # Segments tile the queried range with no gaps or overlaps.
        for (s1, e1, _), (s2, e2, _) in zip(segs, segs[1:]):
            assert e1 == s2

    def test_segments_empty_range(self):
        imap = IntervalMap()
        assert list(imap.segments(7, 7)) == []

    def test_final_value(self):
        imap = IntervalMap(default="d")
        assert imap.final_value() == "d"
        imap.set_from(1, "x")
        assert imap.final_value() == "x"

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=20))
    def test_value_at_matches_linear_scan(self, times):
        times = sorted(set(times))
        imap = IntervalMap(default=-1)
        for i, t in enumerate(times):
            imap.set_from(t, i)
        for probe in range(0, 105):
            expected = -1
            for i, t in enumerate(times):
                if t <= probe:
                    expected = i
            assert imap.value_at(probe) == expected


class TestEncoding:
    @given(st.lists(st.integers(0, 2**63 - 1), max_size=30))
    def test_varint_round_trip(self, values):
        writer = ByteWriter()
        for v in values:
            writer.varint(v)
        reader = ByteReader(writer.getvalue())
        assert [reader.varint() for _ in values] == values
        assert reader.exhausted()

    @given(st.lists(st.integers(-(2**31), 2**31), max_size=30))
    def test_svarint_round_trip(self, values):
        writer = ByteWriter()
        for v in values:
            writer.svarint(v)
        reader = ByteReader(writer.getvalue())
        assert [reader.svarint() for _ in values] == values

    @given(st.text(max_size=50), st.binary(max_size=50))
    def test_text_and_blob_round_trip(self, text, blob):
        writer = ByteWriter().text(text).blob(blob)
        reader = ByteReader(writer.getvalue())
        assert reader.text() == text
        assert reader.blob() == blob

    def test_varint_rejects_negative(self):
        with pytest.raises(ValueError):
            ByteWriter().varint(-1)

    def test_truncated_varint_raises(self):
        with pytest.raises(EOFError):
            ByteReader(b"\x80").varint()

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float64_round_trip(self, value):
        data = ByteWriter().float64(value).getvalue()
        assert ByteReader(data).float64() == value


class TestLogMath:
    def test_logsumexp_matches_naive(self):
        values = np.array([-1.0, -2.0, -3.0])
        assert logsumexp(values) == pytest.approx(np.log(np.exp(values).sum()))

    def test_logsumexp_handles_large_values(self):
        values = np.array([1000.0, 1000.0])
        assert logsumexp(values) == pytest.approx(1000.0 + np.log(2))

    def test_logsumexp_all_neg_inf(self):
        assert logsumexp(np.array([-np.inf, -np.inf])) == -np.inf

    @given(
        st.lists(st.floats(-50, 50), min_size=1, max_size=10).map(np.array)
    )
    def test_log_normalize_is_distribution(self, values):
        probs = log_normalize(values)
        assert probs.shape == values.shape
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_log_normalize_zero_evidence_is_uniform(self):
        probs = log_normalize(np.array([-np.inf] * 4))
        np.testing.assert_allclose(probs, 0.25)


class TestRng:
    def test_same_key_same_stream(self):
        a = spawn_rng(42, "x", 3)
        b = spawn_rng(42, "x", 3)
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_different_keys_differ(self):
        a = spawn_rng(42, "x")
        b = spawn_rng(42, "y")
        draws_a = a.integers(1 << 30, size=8)
        draws_b = b.integers(1 << 30, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_seed_supported(self):
        parent = spawn_rng(7, "parent")
        child1 = spawn_rng(parent, "child")
        parent2 = spawn_rng(7, "parent")
        child2 = spawn_rng(parent2, "child")
        assert child1.integers(1 << 30) == child2.integers(1 << 30)
