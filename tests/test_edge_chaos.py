"""Flaky-edge chaos: the edge plane's convergence oracle.

Feed the chaos scenario's traces through a fully flaky edge plane —
offline reader with burst replay, duplicated/junk/shuffled feed lines,
dropped/duplicated/delayed/reordered edge links, an edge crash+spool
replay, and a gateway crash+WAL recovery — then run the unmodified
federation over the gateway-rebuilt traces. Everything observable
(containment, snapshots, alerts, changes, migrations, history,
archives, data bytes) must be bit-identical to the clean-trace run.

Set ``CHAOS_SEED`` (CI matrix) to verify one extra fault-plan seed.
"""

import os

import pytest

from chaos import (
    assert_chaos_invariant,
    assert_traces_identical,
    chaos_scenario,
    run_chaos,
    run_edge_ingest,
)

EDGE_CHAOS_SEEDS = (
    [int(os.environ["CHAOS_SEED"])] if os.environ.get("CHAOS_SEED") else [11, 23]
)


@pytest.fixture(scope="module")
def scenario():
    return chaos_scenario()


@pytest.fixture(scope="module")
def baseline(scenario):
    return run_chaos(scenario)


class TestEdgeChaos:
    @pytest.mark.parametrize("seed", EDGE_CHAOS_SEEDS)
    def test_flaky_edge_converges_bit_identical(
        self, scenario, baseline, seed, tmp_path
    ):
        rebuilt, report = run_edge_ingest(scenario, seed, str(tmp_path))
        # The faults actually fired, and the plane absorbed them all.
        assert report.gateway_stats["duplicate_batches"] > 0
        assert report.gateway_stats["restarts"] == 1
        assert any(stats["restarts"] for stats in report.edge_stats)
        assert report.recovery_rounds is not None
        assert report.edge_gauges["late_readings"] == 0  # seals were held
        assert_traces_identical(rebuilt, scenario.traces)
        # The federation over the rebuilt traces: bit-identical output,
        # zero fault overhead (its own transport never saw a fault).
        chaotic = run_chaos(scenario, traces=rebuilt)
        assert_chaos_invariant(baseline, chaotic, expect_overhead=False)
