"""Tests for the RFINFER engine: correctness, optimizations, locations."""

import numpy as np
import pytest

from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import InferenceConfig, RFInfer
from repro.metrics.accuracy import containment_error_rate, location_error_rate
from repro.sim.tags import TagKind


@pytest.fixture(scope="module")
def result(small_chain):
    window = TraceWindow.from_range(small_chain.trace, 0, 900)
    return RFInfer(window).run()


class TestContainment:
    def test_high_accuracy_at_default_rates(self, small_chain, result):
        err = containment_error_rate(small_chain.truth, result.containment, 899)
        assert err <= 0.10

    def test_every_item_with_candidates_assigned(self, result):
        for obj, cands in result.candidates.items():
            if cands:
                assert result.containment[obj] is not None

    def test_weights_present_for_all_candidates(self, result):
        for obj, cands in result.candidates.items():
            for cand in cands:
                assert cand in result.weights[obj]

    def test_assignment_is_argmax_of_weights(self, result):
        for obj, weights in result.weights.items():
            if not weights:
                continue
            best = max(weights, key=weights.__getitem__)
            assert result.containment[obj] == best

    def test_members_consistent_with_containment(self, result):
        for container, members in result.members.items():
            for obj in members:
                assert result.containment[obj] == container


class TestLocations:
    def test_location_error_low(self, small_chain, result):
        err = location_error_rate(small_chain.truth, result, 0)
        assert err <= 0.05

    def test_location_rows_in_domain(self, result):
        tag = result.window.tags(TagKind.CASE)[0]
        rows = result.location_rows(tag)
        n = result.window.n_locations
        assert ((rows >= -1) & (rows < n)).all()

    def test_items_follow_their_container(self, result):
        container, members = next(
            (c, m) for c, m in result.members.items() if m
        )
        np.testing.assert_array_equal(
            result.location_rows(members[0]),
            result.container_location_rows(container),
        )

    def test_location_at_accessor(self, result):
        tag = result.window.tags(TagKind.CASE)[0]
        epoch = int(result.window.epochs[10])
        assert result.location_at(tag, epoch) == result.location_rows(tag)[10]


class TestConfigAndMasks:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            InferenceConfig(max_iterations=0)
        with pytest.raises(ValueError):
            InferenceConfig(n_candidates=0)

    def test_keep_evidence_off_skips_arrays(self, small_chain):
        window = TraceWindow.from_range(small_chain.trace, 0, 400)
        out = RFInfer(window, InferenceConfig(keep_evidence=False)).run()
        assert out.evidence is None

    def test_object_ranges_restrict_evidence(self, small_chain):
        window = TraceWindow.from_range(small_chain.trace, 0, 600)
        items = window.tags(TagKind.ITEM)
        obj = items[0]
        out = RFInfer(
            window, objects=items, object_ranges={obj: [(100, 300)]}
        ).run()
        evidence = out.evidence[obj]
        mask = window.rows_in_ranges([(100, 300)])
        for arr in evidence.values():
            assert (arr[~mask] == 0).all()

    def test_memoization_does_not_change_answers(self, small_chain):
        window = TraceWindow.from_range(small_chain.trace, 0, 600)
        on = RFInfer(window, InferenceConfig(memoize=True)).run()
        off = RFInfer(window, InferenceConfig(memoize=False)).run()
        assert on.containment == off.containment
        for obj in on.weights:
            for cand, w in on.weights[obj].items():
                assert w == pytest.approx(off.weights[obj][cand], rel=1e-9)

    def test_prior_weights_can_override(self, small_chain):
        window = TraceWindow.from_range(small_chain.trace, 0, 600)
        items = window.tags(TagKind.ITEM)
        cases = window.tags(TagKind.CASE)
        obj = items[0]
        base = RFInfer(window, objects=[obj], containers=cases).run()
        honest = base.containment[obj]
        rival = next(c for c in base.candidates[obj] if c != honest)
        # A migrated prior that heavily penalizes everything but the
        # rival must win. (Unlisted candidates inherit the prior floor —
        # the worst listed value — so the rival's 0 dominates.)
        out = RFInfer(
            window,
            objects=[obj],
            containers=cases,
            prior_weights={obj: {rival: 0.0, honest: -1e9}},
        ).run()
        assert out.containment[obj] == rival

    def test_initial_containment_respected_on_first_iteration(self, small_chain):
        window = TraceWindow.from_range(small_chain.trace, 0, 600)
        items = window.tags(TagKind.ITEM)[:5]
        out = RFInfer(
            window,
            InferenceConfig(max_iterations=5),
            objects=items,
        ).run()
        assert out.iterations >= 1
