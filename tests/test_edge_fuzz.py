"""Property/fuzz tests for the edge batch codec.

Mirrors :mod:`tests.test_serving_fuzz` for the ingestion plane's wire
format: random batches survive encode→decode; every strict prefix of a
valid encoding raises :class:`ValueError`; any single bit flip either
decodes cleanly or raises :class:`ValueError` — never ``EOFError``,
``IndexError``, or ``struct.error``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.edge import EdgeBatch, decode_edge_batch, encode_edge_batch
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import Reading


def epcs():
    return st.builds(
        EPC,
        st.sampled_from([TagKind.PALLET, TagKind.CASE, TagKind.ITEM]),
        st.integers(0, 2**20),
    )


def readings():
    return st.builds(
        Reading,
        st.integers(0, 2**20),
        epcs(),
        st.integers(0, 2**16),
    )


def batches():
    return st.builds(
        EdgeBatch,
        edge_id=st.integers(0, 2**10),
        site=st.integers(0, 2**10),
        seq=st.integers(1, 2**32),
        upto=st.integers(0, 2**20),
        readings=st.lists(readings(), max_size=8).map(tuple),
    )


def corpus_data() -> bytes:
    batch = EdgeBatch(
        3,
        1,
        9,
        250,
        (Reading(5, EPC(TagKind.CASE, 2), 3), Reading(7, EPC(TagKind.ITEM, 11), 0)),
    )
    return encode_edge_batch(batch)


class TestRoundTrips:
    @given(batch=batches())
    @settings(max_examples=120)
    def test_encode_decode(self, batch):
        assert decode_edge_batch(encode_edge_batch(batch)) == batch

    def test_rejects_invalid_sequence_number(self):
        data = encode_edge_batch(EdgeBatch(0, 0, 0, 0, ()))
        with pytest.raises(ValueError, match="sequence"):
            decode_edge_batch(data)

    def test_rejects_trailing_bytes(self):
        with pytest.raises(ValueError, match="trailing"):
            decode_edge_batch(corpus_data() + b"\x00")


class TestAdversarialBytes:
    def test_every_truncated_prefix_raises_value_error(self):
        data = corpus_data()
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                decode_edge_batch(data[:cut])

    def test_every_bit_flip_is_valueerror_or_clean(self):
        data = corpus_data()
        for pos in range(len(data)):
            for bit in range(8):
                corrupt = bytearray(data)
                corrupt[pos] ^= 1 << bit
                try:
                    decode_edge_batch(bytes(corrupt))
                except ValueError:
                    pass  # the contract: ValueError, nothing rawer

    @given(junk=st.binary(max_size=80))
    @settings(max_examples=80)
    def test_random_junk_never_leaks_decoder_errors(self, junk):
        try:
            decode_edge_batch(junk)
        except ValueError:
            pass
