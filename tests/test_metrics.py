"""Tests for error-rate and F-measure metrics."""

import pytest

from repro.core.changepoint import ChangePoint
from repro.metrics.accuracy import containment_error_rate
from repro.metrics.fmeasure import FMeasure, change_detection_fmeasure, match_alerts
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import ContainmentChange, GroundTruth


def item(i):
    return EPC(TagKind.ITEM, i)


def case(i):
    return EPC(TagKind.CASE, i)


class TestContainmentError:
    def test_counts_mismatches(self):
        truth = GroundTruth()
        for i in range(4):
            truth.record_container(item(i), 0, case(0))
            truth.record_location(item(i), 0, None)
        estimate = {item(0): case(0), item(1): case(0), item(2): case(1), item(3): None}
        err = containment_error_rate(truth, estimate, 10, [item(i) for i in range(4)])
        assert err == pytest.approx(0.5)

    def test_empty_objects(self):
        assert containment_error_rate(GroundTruth(), {}, 0, []) == 0.0

    def test_respects_time(self):
        truth = GroundTruth()
        truth.record_location(item(0), 0, None)
        truth.record_container(item(0), 0, case(0))
        truth.record_container(item(0), 50, case(1))
        estimate = {item(0): case(0)}
        assert containment_error_rate(truth, estimate, 10, [item(0)]) == 0.0
        assert containment_error_rate(truth, estimate, 60, [item(0)]) == 1.0


class TestFMeasure:
    def test_f1_math(self):
        fm = FMeasure.from_counts(true_positives=8, predicted=10, actual=16)
        assert fm.precision == pytest.approx(0.8)
        assert fm.recall == pytest.approx(0.5)
        assert fm.f1 == pytest.approx(2 * 0.8 * 0.5 / 1.3)

    def test_zero_cases(self):
        fm = FMeasure.from_counts(0, 0, 0)
        assert fm.precision == fm.recall == fm.f1 == 0.0

    def test_match_alerts_greedy_one_to_one(self):
        actual = [("a", 100), ("a", 200)]
        predicted = [("a", 105), ("a", 110), ("a", 195)]
        fm = match_alerts(predicted, actual, tolerance=20)
        assert fm.true_positives == 2  # each actual matched at most once
        assert fm.predicted == 3 and fm.actual == 2

    def test_match_alerts_respects_tolerance(self):
        fm = match_alerts([("a", 100)], [("a", 200)], tolerance=50)
        assert fm.true_positives == 0


class TestChangeDetectionFMeasure:
    def make_truth_change(self, i, t, new=None):
        return ContainmentChange(t, item(i), case(0), new or case(1))

    def test_perfect_detection(self):
        truth = [self.make_truth_change(0, 100), self.make_truth_change(1, 300)]
        detected = [
            ChangePoint(item(0), 110, case(0), case(1), 50.0),
            ChangePoint(item(1), 290, case(0), case(1), 60.0),
        ]
        fm = change_detection_fmeasure(truth, detected, tolerance=50)
        assert fm.f1 == pytest.approx(1.0)

    def test_wrong_tag_is_false_positive(self):
        truth = [self.make_truth_change(0, 100)]
        detected = [ChangePoint(item(9), 100, case(0), case(1), 50.0)]
        fm = change_detection_fmeasure(truth, detected, tolerance=50)
        assert fm.true_positives == 0

    def test_container_requirement(self):
        truth = [self.make_truth_change(0, 100, new=case(2))]
        detected = [ChangePoint(item(0), 100, case(0), case(1), 50.0)]
        loose = change_detection_fmeasure(truth, detected, tolerance=50)
        strict = change_detection_fmeasure(
            truth, detected, tolerance=50, require_container=True
        )
        assert loose.true_positives == 1
        assert strict.true_positives == 0

    def test_duplicate_detections_counted_once(self):
        truth = [self.make_truth_change(0, 100)]
        detected = [
            ChangePoint(item(0), 95, case(0), case(1), 50.0),
            ChangePoint(item(0), 105, case(0), case(1), 50.0),
        ]
        fm = change_detection_fmeasure(truth, detected, tolerance=50)
        assert fm.true_positives == 1
        assert fm.predicted == 2
