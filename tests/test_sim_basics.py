"""Tests for tags, the DES engine, layouts, and schedules."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator
from repro.sim.layout import Layout, ReaderKind, ReaderSpec, warehouse_layout
from repro.sim.readers import active_epochs
from repro.sim.tags import EPC, TagKind


class TestEPC:
    @given(st.sampled_from(list(TagKind)), st.integers(0, 10**6))
    def test_str_parse_round_trip(self, kind, serial):
        tag = EPC(kind, serial)
        assert EPC.parse(str(tag)) == tag

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            EPC.parse("X-123")
        with pytest.raises(ValueError):
            EPC.parse("P-abc")

    def test_is_container(self):
        assert EPC(TagKind.CASE, 0).is_container
        assert EPC(TagKind.PALLET, 0).is_container
        assert not EPC(TagKind.ITEM, 0).is_container


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5, seen.append, "b")
        sim.schedule_at(1, seen.append, "a")
        sim.schedule_at(9, seen.append, "c")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_fifo_within_same_epoch(self):
        sim = Simulator()
        seen = []
        for label in "abc":
            sim.schedule_at(4, seen.append, label)
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_until_stops_and_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3, seen.append, "x")
        sim.schedule_at(30, seen.append, "y")
        assert sim.run(until=10) == 10
        assert seen == ["x"]
        assert sim.pending() == 1

    def test_rejects_past_events(self):
        sim = Simulator()
        sim.schedule_at(5, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(2, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule_at(1, outer)
        sim.run()
        assert seen == [("outer", 1), ("inner", 3)]


class TestLayout:
    def test_warehouse_layout_roles(self):
        layout = warehouse_layout(n_shelves=4)
        assert layout.n_locations == 7  # entry + belt + 4 shelves + exit
        assert layout.specs[layout.entry].kind is ReaderKind.ENTRY
        assert layout.specs[layout.belt].kind is ReaderKind.BELT
        assert layout.specs[layout.exit].kind is ReaderKind.EXIT
        assert len(layout.shelf_indices) == 4

    def test_adjacent_pairs_are_consecutive_shelves(self):
        layout = warehouse_layout(n_shelves=3)
        shelf = layout.shelf_indices
        assert layout.adjacent_pairs == ((shelf[0], shelf[1]), (shelf[1], shelf[2]))

    def test_shelves_synchronized(self):
        layout = warehouse_layout(n_shelves=4)
        active_at_0 = layout.active_readers(0)
        for idx in layout.shelf_indices:
            assert idx in active_at_0
        active_at_5 = layout.active_readers(5)
        for idx in layout.shelf_indices:
            assert idx not in active_at_5

    def test_pattern_period(self):
        layout = warehouse_layout(n_shelves=2, shelf_period=10)
        assert layout.pattern_period == 10
        assert layout.pattern_key(23) == 3

    def test_mobile_sweep_visits_shelves_in_turn(self):
        layout = warehouse_layout(n_shelves=3, mobile_shelf_scan=True, mobile_dwell=10)
        # At epoch 0-9 shelf 0 is scanned; 10-19 shelf 1; etc.
        s0, s1, s2 = layout.shelf_indices
        assert layout.specs[s0].is_active(5)
        assert not layout.specs[s1].is_active(5)
        assert layout.specs[s1].is_active(15)
        assert layout.specs[s2].is_active(25)
        assert layout.specs[s0].is_active(35 - 30 + 0)  # wraps around

    def test_reader_spec_validation(self):
        with pytest.raises(ValueError):
            ReaderSpec("bad", ReaderKind.SHELF, period=0)
        with pytest.raises(ValueError):
            ReaderSpec("bad", ReaderKind.SHELF, period=5, burst=6)

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError):
            Layout("empty", [])


class TestActiveEpochs:
    @given(
        st.integers(1, 12),
        st.integers(0, 11),
        st.integers(1, 6),
        st.integers(0, 40),
        st.integers(0, 40),
    )
    def test_matches_is_active(self, period, phase, burst, start, length):
        burst = min(burst, period)
        spec = ReaderSpec("r", ReaderKind.SHELF, period=period, phase=phase, burst=burst)
        end = start + length
        fast = set(active_epochs(spec, start, end).tolist())
        slow = {t for t in range(start, end) if spec.is_active(t)}
        assert fast == slow

    def test_empty_range(self):
        spec = ReaderSpec("r", ReaderKind.SHELF, period=10)
        assert active_epochs(spec, 5, 5).size == 0


class TestTraceReadingsMemoization:
    """The ``Trace.readings`` compat property must build its tuple list
    once — repeated audits/codec passes over the same trace used to pay
    an O(n) rebuild per access."""

    def _trace(self):
        from repro.sim.layout import warehouse_layout
        from repro.sim.readers import ReadRateModel
        from repro.sim.trace import Reading, Trace

        layout = warehouse_layout(name="memo")
        model = ReadRateModel.build(layout, main_rate=0.8, seed=0)
        rows = [Reading(t, EPC(TagKind.ITEM, t % 3), 0) for t in range(50)]
        return Trace(0, layout, model, rows, horizon=50)

    def test_readings_built_exactly_once(self, monkeypatch):
        import repro.sim.trace as trace_module

        trace = self._trace()
        builds = 0
        original = trace_module.Reading

        class CountingReading(original):
            def __new__(cls, *args, **kwargs):
                nonlocal builds
                builds += 1
                return original.__new__(original, *args, **kwargs)

        monkeypatch.setattr(trace_module, "Reading", CountingReading)
        first = trace.readings
        assert builds == len(trace)
        second = trace.readings
        assert builds == len(trace)  # no rebuild on the second access
        assert second is first

    def test_readings_round_trip_columns(self):
        trace = self._trace()
        assert [(r.time, r.tag, r.reader) for r in trace.readings] == [
            (int(t), trace.tag_table[i], int(r))
            for t, i, r in zip(
                trace.times.tolist(), trace.tag_ids.tolist(), trace.readers.tolist()
            )
        ]
