"""Property/fuzz tests for every :mod:`repro.runtime.envelope` codec.

Two families:

* **round trips** — random tag lists, state bundles, query bundles,
  single query states, and acks survive encode→decode across seeds;
* **adversarial bytes** — every strict prefix of a valid encoding
  raises :class:`ValueError` (each trailing byte of these formats is
  load-bearing), and any single bit flip either decodes cleanly or
  raises :class:`ValueError` — never ``EOFError``, ``IndexError``, or
  ``struct.error``, which would leak decoder internals into message
  handlers.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.envelope import (
    decode_ack,
    decode_query_bundle,
    decode_single_query_state,
    decode_state_bundle,
    decode_tag_list,
    encode_ack,
    encode_query_bundle,
    encode_single_query_state,
    encode_state_bundle,
    encode_tag_list,
)
from repro.sim.tags import EPC, TagKind


def epcs():
    return st.builds(
        EPC,
        st.sampled_from([TagKind.PALLET, TagKind.CASE, TagKind.ITEM]),
        st.integers(0, 2**20),
    )


def state_dicts(min_size=1):
    return st.dictionaries(
        epcs(), st.binary(min_size=0, max_size=40), min_size=min_size, max_size=6
    )


class TestRoundTrips:
    @given(tags=st.lists(epcs(), max_size=10))
    @settings(max_examples=60)
    def test_tag_list(self, tags):
        assert decode_tag_list(encode_tag_list(tags)) == tags

    @given(states=state_dicts())
    @settings(max_examples=60)
    def test_state_bundle(self, states):
        assert decode_state_bundle(encode_state_bundle(states)) == states

    @given(
        per_query=st.dictionaries(
            st.text(min_size=1, max_size=8), state_dicts(), max_size=3
        )
    )
    @settings(max_examples=40)
    def test_query_bundle(self, per_query):
        assert decode_query_bundle(encode_query_bundle(per_query)) == per_query

    @given(
        name=st.text(max_size=12),
        tag=epcs(),
        state=st.binary(max_size=40),
    )
    @settings(max_examples=60)
    def test_single_query_state(self, name, tag, state):
        assert decode_single_query_state(
            encode_single_query_state(name, tag, state)
        ) == (name, tag, state)

    @given(seq=st.integers(1, 2**40))
    @settings(max_examples=40)
    def test_ack(self, seq):
        assert decode_ack(encode_ack(seq)) == seq

    def test_ack_rejects_unsequenced(self):
        with pytest.raises(ValueError):
            encode_ack(0)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_seeded_random_round_trips(self, seed):
        """The non-hypothesis sweep: one fixed encoding per seed, so a
        codec regression bisects to a seed."""
        rng = random.Random(seed)
        tags = [
            EPC(TagKind(rng.randrange(3)), rng.randrange(2**16)) for _ in range(8)
        ]
        assert decode_tag_list(encode_tag_list(tags)) == tags
        states = {tag: rng.randbytes(rng.randrange(30)) for tag in tags}
        assert decode_state_bundle(encode_state_bundle(states)) == states
        per_query = {f"q{i}": dict(list(states.items())[: i + 1]) for i in range(3)}
        assert decode_query_bundle(encode_query_bundle(per_query)) == per_query


def corpus():
    """One representative valid encoding per codec."""
    tags = [EPC(TagKind.ITEM, 7), EPC(TagKind.CASE, 300), EPC(TagKind.PALLET, 0)]
    states = {tag: bytes(range(10)) + bytes([i]) for i, tag in enumerate(tags)}
    return [
        (decode_tag_list, encode_tag_list(tags)),
        (decode_state_bundle, encode_state_bundle(states)),
        (
            decode_query_bundle,
            encode_query_bundle({"q1": states, "path": {tags[0]: b"\x01\x02"}}),
        ),
        (
            decode_single_query_state,
            encode_single_query_state("q2", tags[1], b"\x07\x08\x09"),
        ),
        (decode_ack, encode_ack(12345)),
    ]


class TestAdversarialBytes:
    @pytest.mark.parametrize(
        "decode,data", corpus(), ids=lambda value: getattr(value, "__name__", "")
    )
    def test_every_truncated_prefix_raises_value_error(self, decode, data):
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                decode(data[:cut])

    @pytest.mark.parametrize(
        "decode,data", corpus(), ids=lambda value: getattr(value, "__name__", "")
    )
    def test_every_bit_flip_is_valueerror_or_clean(self, decode, data):
        for pos in range(len(data)):
            for bit in range(8):
                corrupt = bytearray(data)
                corrupt[pos] ^= 1 << bit
                try:
                    decode(bytes(corrupt))
                except ValueError:
                    pass  # the contract: ValueError, nothing rawer

    @given(junk=st.binary(max_size=60))
    @settings(max_examples=80)
    def test_random_junk_never_leaks_decoder_errors(self, junk):
        for decode, _ in corpus():
            try:
                decode(junk)
            except ValueError:
                pass
