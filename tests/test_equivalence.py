"""Equivalence proofs for the batched inference kernels.

The batched M-step/evidence kernels (``InferenceConfig(batched=True)``,
the default) must be indistinguishable from the historical per-pair
path (``batched=False``) and from the naive line-by-line Algorithm 1
(:mod:`repro.core.reference`):

* containment, change points, critical regions, and emitted events are
  **identical** (the discrete outputs downstream layers consume);
* evidence arrays are **float64-exact** against the per-pair path (the
  batched extraction replays the same additions in the same order);
* weights agree to float64 rounding (the silence terms sum in a
  different — but mathematically identical — order);
* a federated chaos-seed run ships **byte-identical** Table-5 ledger
  traffic under either kernel.

Three workload scenarios cover the policy space: critical-region
truncation on a clean chain, change detection + events on an anomalous
chain, and sliding-window truncation; the federation scenario adds
migrations, query state, and a faulty transport.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.likelihood import TraceWindow, WindowCache
from repro.core.reference import reference_rfinfer
from repro.core.rfinfer import InferenceConfig, RFInfer
from repro.core.service import ServiceConfig, StreamingInference
from repro.core.truncation import find_critical_region, find_critical_regions
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.tags import TagKind

from chaos import CHAOS_CONFIG, chaos_scenario, chaos_transport, run_chaos


def _service_outputs(trace, config: ServiceConfig, horizon: int):
    service = StreamingInference(trace, config)
    service.run_until(horizon)
    return service


def _run_pair(trace, config: ServiceConfig, horizon: int):
    batched = _service_outputs(
        trace, replace(config, inference=replace(config.inference, batched=True)),
        horizon,
    )
    per_pair = _service_outputs(
        trace, replace(config, inference=replace(config.inference, batched=False)),
        horizon,
    )
    return batched, per_pair


SCENARIO_CONFIGS = {
    "cr-clean": ServiceConfig(
        run_interval=300, recent_history=600, truncation="cr", emit_events=True
    ),
    "changes-anomalies": ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation="cr",
        change_detection=True,
        change_threshold=80.0,
        emit_events=True,
        event_period=5,
    ),
    "sliding-window": ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation="window",
        window_size=900,
        emit_events=True,
        event_period=10,
    ),
}


@pytest.fixture(scope="module")
def scenarios(small_chain, anomaly_chain):
    return {
        "cr-clean": (small_chain, 900),
        "changes-anomalies": (anomaly_chain, 1500),
        "sliding-window": (anomaly_chain, 1500),
    }


class TestServiceEquivalence:
    """Batched vs per-pair kernels through the full periodic service."""

    @pytest.mark.parametrize("name", sorted(SCENARIO_CONFIGS))
    def test_discrete_outputs_identical(self, name, scenarios):
        result, horizon = scenarios[name]
        batched, per_pair = _run_pair(result.trace, SCENARIO_CONFIGS[name], horizon)
        assert batched.containment == per_pair.containment
        assert batched.changes == per_pair.changes
        assert batched.critical_regions == per_pair.critical_regions
        assert batched.events == per_pair.events
        assert [r.containment for r in batched.runs] == [
            r.containment for r in per_pair.runs
        ]
        assert [r.iterations for r in batched.runs] == [
            r.iterations for r in per_pair.runs
        ]

    @pytest.mark.parametrize("name", sorted(SCENARIO_CONFIGS))
    def test_weights_match_to_rounding(self, name, scenarios):
        result, horizon = scenarios[name]
        batched, per_pair = _run_pair(result.trace, SCENARIO_CONFIGS[name], horizon)
        assert set(batched.last_weights) == set(per_pair.last_weights)
        for tag, per_candidate in batched.last_weights.items():
            other = per_pair.last_weights[tag]
            assert set(per_candidate) == set(other)
            for cand, weight in per_candidate.items():
                assert weight == pytest.approx(other[cand], rel=1e-9, abs=1e-8)


class TestKernelEquivalence:
    """Kernel-level checks against the per-pair path and Algorithm 1."""

    @pytest.fixture(scope="class")
    def window(self, small_chain):
        return TraceWindow.from_range(small_chain.trace, 0, 900)

    def _engines(self, window, **kwargs):
        fast = RFInfer(window, InferenceConfig(batched=True), **kwargs).run()
        slow = RFInfer(window, InferenceConfig(batched=False), **kwargs).run()
        return fast, slow

    def test_masked_run_evidence_is_bitwise_equal(self, window):
        objects = window.tags(TagKind.ITEM)
        ranges = {obj: [(100, 700)] for obj in objects[::2]}
        fast, slow = self._engines(window, object_ranges=ranges)
        assert fast.containment == slow.containment
        assert fast.candidates == slow.candidates
        assert fast.evidence is not None and slow.evidence is not None
        for obj, tracks in fast.evidence.items():
            assert list(tracks) == list(slow.evidence[obj])
            for cand, arr in tracks.items():
                np.testing.assert_array_equal(arr, slow.evidence[obj][cand])

    def test_prior_weights_run_matches(self, window):
        objects = window.tags(TagKind.ITEM)
        containers = window.tags(TagKind.CASE)
        priors = {obj: {containers[0]: -3.0, containers[-1]: -1.0} for obj in objects[:7]}
        fast, slow = self._engines(window, prior_weights=priors)
        assert fast.containment == slow.containment
        for obj in objects:
            for cand, weight in fast.weights[obj].items():
                assert weight == pytest.approx(slow.weights[obj][cand], rel=1e-9)

    def test_batched_matches_naive_algorithm1(self, window):
        objects = window.tags(TagKind.ITEM)[:10]
        containers = window.tags(TagKind.CASE)
        initial = {obj: containers[0] for obj in objects}
        fast = RFInfer(
            window,
            InferenceConfig(batched=True, candidate_pruning=False),
            objects=objects,
            containers=containers,
            initial_containment=initial,
        ).run()
        slow = reference_rfinfer(
            window, objects, containers, initial_containment=initial
        )
        assert fast.containment == slow.containment
        for obj in objects:
            for cand in containers:
                assert fast.weights[obj][cand] == pytest.approx(
                    slow.weights[obj][cand], rel=1e-6, abs=1e-6
                )

    def test_log_likelihood_memo_matches_recompute(self, window):
        fast, slow = self._engines(window)
        # The memoized path (batched run) and the from-scratch path must
        # agree; slow shares the same memo logic, so force a cache miss
        # by clearing it.
        memoized = fast.log_likelihood()
        fast._logz_cache.clear()
        assert memoized == pytest.approx(fast.log_likelihood(), rel=1e-12)
        assert memoized == pytest.approx(slow.log_likelihood(), rel=1e-12)


class TestWindowEquivalence:
    """Incremental windows must be bitwise identical to cold builds."""

    def test_window_cache_reuse_is_bitwise(self, small_chain):
        cache = WindowCache(small_chain.trace)
        first = cache.window(np.arange(0, 600))
        # Overlapping slide plus a disjoint critical region.
        epochs = np.concatenate([np.arange(40, 80), np.arange(300, 900)])
        warm = cache.window(epochs)
        cold = TraceWindow(small_chain.trace, epochs)
        assert warm.base_rows_reused > 0
        np.testing.assert_array_equal(warm.epochs, cold.epochs)
        np.testing.assert_array_equal(warm.base, cold.base)
        assert set(warm.readings) == set(cold.readings)
        for tag, (rows, readers) in warm.readings.items():
            np.testing.assert_array_equal(rows, cold.readings[tag][0])
            np.testing.assert_array_equal(readers, cold.readings[tag][1])
        assert first.base_rows_reused == 0

    def test_window_cache_subset_reuse(self, small_chain):
        """A window that is a strict subset of the previous one must
        gather the matching rows, not alias the larger base matrix."""
        cache = WindowCache(small_chain.trace)
        cache.window(np.arange(0, 600))
        warm = cache.window(np.arange(100, 400))
        cold = TraceWindow(small_chain.trace, np.arange(100, 400))
        assert warm.base.shape == cold.base.shape
        np.testing.assert_array_equal(warm.base, cold.base)
        assert warm.base_rows_reused == warm.n_rows

    def test_batched_cr_search_matches_single(self, anomaly_chain):
        service = StreamingInference(
            anomaly_chain.trace,
            ServiceConfig(
                run_interval=300,
                recent_history=600,
                truncation="cr",
                emit_events=False,
                retain_evidence=True,
            ),
        )
        service.run_until(1500)
        checked = 0
        for record in service.runs:
            if record.result is None or record.result.evidence is None:
                continue
            objects = list(record.result.evidence)
            batch = find_critical_regions(record.result, objects)
            for obj in objects:
                single = find_critical_region(record.result, obj)
                assert batch.get(obj) == single
                checked += 1
        assert checked > 0


class TestFederationEquivalence:
    """Batched vs per-pair kernels across a chaos-seed federation run.

    Everything observable — containment error, alerts, detected
    changes, migrations, and the Table-5 per-kind ledger byte counts —
    must be identical, including under a seeded faulty transport.
    """

    @pytest.fixture(scope="class")
    def results(self):
        scenario = chaos_scenario()
        legacy_config = replace(
            CHAOS_CONFIG, inference=replace(CHAOS_CONFIG.inference, batched=False)
        )
        batched = run_chaos(scenario, CHAOS_CONFIG)
        per_pair = run_chaos(scenario, legacy_config)
        chaotic = run_chaos(scenario, CHAOS_CONFIG, transport=chaos_transport(101))
        return batched, per_pair, chaotic

    def test_federation_outputs_identical(self, results):
        batched, per_pair, _ = results
        assert batched.containment_error == per_pair.containment_error
        assert batched.snapshots == per_pair.snapshots
        assert batched.alerts == per_pair.alerts
        assert batched.changes == per_pair.changes
        assert batched.migrations == per_pair.migrations

    def test_table5_ledger_bytes_identical(self, results):
        batched, per_pair, _ = results
        assert batched.data_bytes == per_pair.data_bytes
        assert batched.all_bytes == per_pair.all_bytes

    def test_chaos_transport_still_converges_with_batched_kernels(self, results):
        batched, _, chaotic = results
        assert chaotic.containment_error == batched.containment_error
        assert chaotic.alerts == batched.alerts
        assert chaotic.changes == batched.changes
        assert chaotic.data_bytes == batched.data_bytes
        assert chaotic.overhead_bytes > 0
