"""Tests for the vectorized likelihood plumbing (TraceWindow)."""

import numpy as np
import pytest

from repro.core.likelihood import TraceWindow, WindowCache, row_softmax
from repro.sim.tags import EPC, TagKind


@pytest.fixture(scope="module")
def window(small_chain):
    return TraceWindow.from_range(small_chain.trace, 0, 600)


class TestTraceWindow:
    def test_rows_are_sorted_unique(self, window):
        assert (np.diff(window.epochs) > 0).all()

    def test_row_of_round_trip(self, window):
        for epoch in (0, 100, 599):
            assert window.epochs[window.row_of(epoch)] == epoch
        with pytest.raises(KeyError):
            window.row_of(600)

    def test_tag_rows_match_trace(self, window, small_chain):
        tag = window.tags(TagKind.CASE)[0]
        rows, readers = window.tag_rows(tag)
        raw_times, raw_readers = small_chain.trace.tag_readings_in(tag, 0, 600)
        assert rows.size == raw_times.size
        np.testing.assert_array_equal(window.epochs[rows], raw_times)
        np.testing.assert_array_equal(readers, raw_readers)

    def test_noncontiguous_window_filters_readings(self, small_chain):
        epochs = list(range(0, 100)) + list(range(300, 400))
        window = TraceWindow(small_chain.trace, epochs)
        assert window.n_rows == 200
        for tag in window.tags():
            rows, _ = window.tag_rows(tag)
            times = window.epochs[rows]
            assert (((times < 100)) | ((times >= 300) & (times < 400))).all()

    def test_group_posterior_rows_normalized(self, window):
        tag = window.tags(TagKind.CASE)[0]
        q = window.group_posterior([tag])
        assert q.shape == (window.n_rows, window.n_states)
        np.testing.assert_allclose(q.sum(axis=1), 1.0)
        assert (q >= 0).all()

    def test_scatter_matches_manual(self, window):
        tag = window.tags(TagKind.ITEM)[0]
        out = np.zeros((window.n_rows, window.n_states))
        window.scatter([tag], out)
        rows, readers = window.tag_rows(tag)
        manual = np.zeros_like(out)
        for row, reader in zip(rows, readers):
            manual[row] += window.model.delta[reader]
        np.testing.assert_allclose(out, manual)

    def test_point_evidence_sums_to_weight(self, window):
        case = window.tags(TagKind.CASE)[0]
        item = window.tags(TagKind.ITEM)[0]
        q = window.group_posterior([case, item])
        evidence = window.point_evidence(q, item)
        assert evidence.sum() == pytest.approx(window.weight(q, item), rel=1e-9)

    def test_weight_with_mask_restricts_rows(self, window):
        case = window.tags(TagKind.CASE)[0]
        item = window.tags(TagKind.ITEM)[0]
        q = window.group_posterior([case, item])
        mask = window.rows_in_ranges([(0, 300)])
        masked = window.weight(q, item, mask)
        full = window.weight(q, item)
        evidence = window.point_evidence(q, item)
        assert masked == pytest.approx(evidence[mask].sum())
        assert masked != pytest.approx(full)

    def test_rows_in_ranges_union(self, window):
        mask = window.rows_in_ranges([(0, 10), (20, 30)])
        assert mask.sum() == 20
        assert mask[0] and not mask[15] and mask[25]

    def test_away_evidence_penalizes_readings(self, window):
        item = window.tags(TagKind.ITEM)[0]
        away = window.away_evidence(item)
        rows, _ = window.tag_rows(item)
        # Rows with readings must carry the ~log(eps) penalty.
        assert (away[rows] < -10).all()
        silent = np.setdiff1d(np.arange(window.n_rows), rows)
        assert (away[silent] > -0.01).all()

    def test_requires_at_least_one_epoch(self, small_chain):
        with pytest.raises(ValueError):
            TraceWindow(small_chain.trace, [])


class TestWindowCacheEviction:
    """The ``max_age`` cap: bounded retention, bitwise-pure results."""

    INTERVAL = 60
    MAX_AGE = 120

    def _stream(self, trace, max_age):
        """Grow-forever windows (the "all" policy), streamed 10x past
        the cap, returning the built windows."""
        cache = WindowCache(trace, max_age=max_age)
        windows = []
        for now in range(self.INTERVAL, 10 * self.MAX_AGE + 1, self.INTERVAL):
            windows.append(cache.window(np.arange(0, now, dtype=np.int64)))
        return cache, windows

    def test_rejects_bad_max_age(self, small_chain):
        with pytest.raises(ValueError):
            WindowCache(small_chain.trace, max_age=0)

    def test_retained_rows_stay_bounded(self, small_chain):
        cache, _ = self._stream(small_chain.trace, self.MAX_AGE)
        assert cache.rows_evicted > 0
        assert cache.cached_rows() <= self.MAX_AGE

    def test_eviction_is_bitwise_pure(self, small_chain):
        capped, capped_windows = self._stream(small_chain.trace, self.MAX_AGE)
        uncapped, free_windows = self._stream(small_chain.trace, None)
        assert uncapped.rows_evicted == 0
        assert uncapped.cached_rows() == 10 * self.MAX_AGE
        for got, want in zip(capped_windows, free_windows):
            np.testing.assert_array_equal(got.epochs, want.epochs)
            np.testing.assert_array_equal(got.base, want.base)
        # The cap can only lower the hit rate, never change a window.
        assert capped.rows_reused <= uncapped.rows_reused
        assert capped.rows_reused > 0


class TestRowSoftmax:
    def test_matches_manual(self):
        logits = np.array([[0.0, 1.0, 2.0], [-5.0, -5.0, -5.0]])
        out = row_softmax(logits)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)
        np.testing.assert_allclose(out[1], 1 / 3)
        assert out[0, 2] > out[0, 1] > out[0, 0]
