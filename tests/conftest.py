"""Shared fixtures: small, cached simulation artifacts."""

from __future__ import annotations

import pytest

from repro.sim.supplychain import SupplyChainParams, simulate


@pytest.fixture(scope="session")
def small_chain():
    """A small single-warehouse run used by many read-only tests."""
    return simulate(
        SupplyChainParams(
            n_warehouses=1,
            horizon=900,
            items_per_case=8,
            cases_per_pallet=4,
            injection_period=150,
            main_read_rate=0.8,
            overlap_rate=0.5,
            seed=101,
        )
    )


@pytest.fixture(scope="session")
def anomaly_chain():
    """A single warehouse with injected containment changes."""
    return simulate(
        SupplyChainParams(
            n_warehouses=1,
            horizon=1500,
            items_per_case=8,
            cases_per_pallet=4,
            injection_period=200,
            main_read_rate=0.8,
            overlap_rate=0.5,
            anomaly_interval=100,
            n_shelves=6,
            seed=202,
        )
    )


@pytest.fixture(scope="session")
def multi_site_chain():
    """Three warehouses in a chain, for distributed tests."""
    from repro.sim.warehouse import WarehouseParams

    return simulate(
        SupplyChainParams(
            n_warehouses=3,
            horizon=1800,
            items_per_case=6,
            cases_per_pallet=3,
            injection_period=300,
            main_read_rate=0.8,
            overlap_rate=0.5,
            warehouse=WarehouseParams(shelf_dwell_mean=300, shelf_dwell_jitter=40),
            seed=303,
        )
    )
