"""Historical archive: stream consistency, sealing, codec, recovery.

The headline contract (ISSUE 5 acceptance): for every scenario,
point-in-time location/containment queries against a site's archive
exactly match the inference snapshots the site emitted at those epochs
— including across migration and crash/recovery, where the recovered
site's archive must be bit-identical to the fault-free run's.
"""

import pytest

from repro.archive import NO_CONTAINER, SiteArchive, decode_archive, encode_archive
from repro.core.service import ServiceConfig
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import Cluster
from repro.serving.history import HistoryService
from repro.sim.tags import EPC, TagKind
from repro.workloads.scenarios import cold_chain_scenario, evidence_scenario

EVENTS_CONFIG = ServiceConfig(
    run_interval=300,
    recent_history=600,
    truncation="cr",
    emit_events=True,
    event_period=5,
)


def run_cluster(traces, scenario=None, crash=None, config=EVENTS_CONFIG):
    cluster = Cluster(traces, config)
    if scenario is not None and scenario.fields:
        cluster.add_query(
            "q2",
            lambda site: TemperatureExposureQuery(
                scenario.catalog, exposure_duration=400
            ),
        )
        cluster.set_sensor_streams(
            {site: scenario.sensor_stream(site) for site in range(len(traces))}
        )
    if crash is not None:
        site, crash_time, recover_time = crash
        cluster.crash(site, crash_time)
        cluster.recover(site, recover_time)
    cluster.run(traces[0].horizon)
    return cluster


def assert_stream_consistent(cluster):
    """Archive answers at boundary epochs == the emitted snapshots."""
    checked = 0
    for node in cluster.nodes:
        for record in node.service.runs:
            for tag, container in record.containment.items():
                answer = node.history.point_containment(tag, record.time)
                assert answer.rows, (node.site, tag, record.time)
                assert answer.rows[0][0] == container
                checked += 1
        for event in node.service.events:
            answer = node.history.point_location(event.tag, event.time)
            assert answer.rows and answer.rows[0][0] == event.place
            checked += 1
    assert checked > 0


class TestStreamConsistency:
    def test_evidence_scenario(self):
        scenario = evidence_scenario(seed=3)
        # The Fig. 4 journey is short (horizon 260), so tick faster than
        # the default 300-epoch interval.
        config = ServiceConfig(
            run_interval=50,
            recent_history=100,
            truncation="cr",
            emit_events=True,
            event_period=5,
        )
        with run_cluster([scenario.trace], config=config) as cluster:
            assert_stream_consistent(cluster)

    def test_cold_chain_single_site(self):
        scenario = cold_chain_scenario(seed=11, horizon=900)
        with run_cluster(scenario.traces, scenario) as cluster:
            assert_stream_consistent(cluster)

    def test_cold_chain_across_migration(self):
        scenario = cold_chain_scenario(
            seed=19, n_sites=2, horizon=1200, site_leave_time=600
        )
        with run_cluster(scenario.traces, scenario) as cluster:
            assert_stream_consistent(cluster)
            # A migrated case has history at both sites; the later
            # interval lives at the destination.
            case = EPC(TagKind.CASE, 0)
            src, dst = cluster.nodes
            assert src.history.trajectory(case, 0, 1200).rows
            assert dst.history.trajectory(case, 0, 1200).rows

    def test_crash_recovery_archive_bit_identical(self):
        scenario = cold_chain_scenario(
            seed=23, n_sites=2, horizon=1200, site_leave_time=600
        )
        with run_cluster(scenario.traces, scenario) as baseline:
            with run_cluster(scenario.traces, scenario, crash=(1, 910, 1100)) as crashed:
                for base_node, crash_node in zip(baseline.nodes, crashed.nodes):
                    assert encode_archive(base_node.archive) == encode_archive(
                        crash_node.archive
                    )
                assert_stream_consistent(crashed)


class TestArchiveStore:
    def _stub_archive(self):
        archive = SiteArchive(0, seal_every=4)
        item = archive.intern_tag(EPC(TagKind.ITEM, 1))
        case = archive.intern_tag(EPC(TagKind.CASE, 1))
        return archive, item, case

    def test_interval_merging_and_sealing(self):
        archive, item, _ = self._stub_archive()
        log = archive.location
        log.observe(item, 0, ((5, 1.0),))
        log.observe(item, 10, ((5, 1.0),))  # same place: no new interval
        log.observe(item, 20, ((7, 1.0),))
        assert log.covering(item, 15) == [(0, 0, 5, 1.0)]
        assert log.covering(item, 25) == [(0, 20, 7, 1.0)]
        assert log.in_range(item, 0, 100) == [(0, 20, 5, 1.0), (20, -1, 7, 1.0)]
        assert log.row_count() == 1  # only the sealed [0, 20) row
        log.seal()
        assert len(log.segments) == 1

    def test_auto_seal_threshold(self):
        archive, item, _ = self._stub_archive()
        for i in range(10):
            archive.location.observe(item, i, ((i, 1.0),))
        assert archive.location.segments  # crossed seal_every=4

    def test_compact_merges_adjacent_same_value(self):
        archive, item, _ = self._stub_archive()
        log = archive.containment
        # Force the same value into two touching sealed rows.
        log.pending = [(item, 0, 0, 10, 3, 0.5), (item, 0, 10, 20, 3, 0.5)]
        log.seal()
        log.pending = [(item, 0, 20, 30, 4, 0.5)]
        before = log.in_range(item, 0, 100)
        removed = log.compact()
        assert removed == 1
        assert log.in_range(item, 0, 100) == [(0, 20, 3, 0.5), (20, 30, 4, 0.5)]
        assert [r for r in before if r[2] == 4] == [(20, 30, 4, 0.5)]

    def test_snapshot_reader_is_isolated(self):
        archive, item, case = self._stub_archive()
        archive.containment.observe(item, 0, ((case, 0.9),))
        reader = HistoryService(archive.snapshot_reader())
        live = HistoryService(archive)
        archive.containment.observe(item, 300, ((NO_CONTAINER, 1.0),))
        archive.last_boundary = 300
        assert reader.point_containment(EPC(TagKind.ITEM, 1), 300).rows[0][0] == EPC(
            TagKind.CASE, 1
        )
        assert live.point_containment(EPC(TagKind.ITEM, 1), 300).rows[0][0] is None

    def test_ingest_rejects_time_travel_backwards(self):
        archive = SiteArchive(0)
        archive.last_boundary = 600

        class Stub:
            last_run_time = 300
            events = []
            containment = {}
            last_weights = {}

        with pytest.raises(ValueError, match="older boundary"):
            archive.ingest_service(Stub())

    def test_ingest_tolerates_tag_with_no_candidates(self):
        """A tag can surface with an empty candidate-weight table (zero
        co-located containers in its window); the belief log skips it
        instead of crashing on the empty normalization."""
        archive = SiteArchive(0)
        lonely = EPC(TagKind.ITEM, 1)
        item = EPC(TagKind.ITEM, 2)
        case = EPC(TagKind.CASE, 1)

        class Stub:
            last_run_time = 300
            events = []
            containment = {lonely: None, item: case}
            last_weights = {lonely: {}, item: {case: -0.5}}

            def events_since(self, cursor):
                return [], cursor

        archive.ingest_service(Stub())
        assert archive.last_boundary == 300
        # The tag with real candidates still logged a belief row.
        assert archive.tag_id_of(item) is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SiteArchive(0, seal_every=0)
        with pytest.raises(ValueError):
            SiteArchive(0, top_k=0)


class TestArchiveCodec:
    def test_round_trip_preserves_segmentation(self):
        archive = SiteArchive(2, seal_every=3, top_k=2)
        item = archive.intern_tag(EPC(TagKind.ITEM, 7))
        case = archive.intern_tag(EPC(TagKind.CASE, 9))
        for t in range(6):
            archive.location.observe(item, t * 10, ((t, 1.0),))
        archive.containment.observe(item, 0, ((case, 0.75),))
        archive.belief.observe(item, 0, ((case, 0.75), (item, 0.25)))
        archive.events.append(5, item, 3, case)
        archive.ingest_alerts("q2", [])
        archive.alerts.append(
            archive.intern_key("q2"), archive.intern_key("I-000007"), 10, 20, (1.5, 2.5)
        )
        archive.last_boundary = 50
        data = encode_archive(archive)
        restored = decode_archive(data)
        assert encode_archive(restored) == data
        assert restored.site == 2
        assert restored.last_boundary == 50
        assert restored.row_count() == archive.row_count()
        assert len(restored.location.segments) == len(archive.location.segments)
        assert restored.tag_table == archive.tag_table
        assert restored.key_table == archive.key_table
        assert restored.alert_cursors == archive.alert_cursors

    def test_rejects_unknown_version(self):
        archive = SiteArchive(0)
        data = bytearray(encode_archive(archive))
        data[0] = 99
        with pytest.raises(ValueError, match="version"):
            decode_archive(bytes(data))

    def test_rejects_truncation(self):
        archive = SiteArchive(1)
        archive.intern_tag(EPC(TagKind.ITEM, 1))
        archive.events.append(1, 0, 2, NO_CONTAINER)
        data = encode_archive(archive)
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                decode_archive(data[:cut])
