"""Deterministic chaos-harness helpers for the fault-tolerance tests.

The harness's headline invariant: under *any* seeded fault plan —
drops, duplicates, delays, reordering, and a mid-interval site
crash+recover — the federation's observable results are bit-identical
to the fault-free in-process run; only the ledger's ``retransmit`` and
``ack`` overhead kinds may differ. :func:`run_chaos` executes one run
and reduces it to a canonical :class:`ChaosResult`;
:func:`assert_chaos_invariant` compares two of them.

Alert/change orderings are canonicalized (sorted) before comparison:
reordered delivery may interleave *independent* per-object work within
a barrier phase differently, which permutes append order into shared
logs without changing any individual record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.rng import spawn_rng
from repro.archive import encode_archive
from repro.core.service import ServiceConfig
from repro.edge import EdgePlan, run_ingest
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import Cluster, FaultPlan, FaultyTransport, Transport
from repro.sim.vendor import FeedNoise, VendorFeed
from repro.workloads.scenarios import cold_chain_scenario

#: the harness config: events on (queries run) and change detection on
#: (so the detected-changes invariant is non-vacuous).
CHAOS_CONFIG = ServiceConfig(
    run_interval=300,
    recent_history=600,
    truncation="cr",
    emit_events=True,
    event_period=5,
    change_detection=True,
    change_threshold=80.0,
)


def chaos_scenario():
    """A two-site cold chain whose exposures span a migration."""
    return cold_chain_scenario(
        seed=7,
        n_sites=2,
        n_freezer_cases=6,
        n_room_cases=3,
        items_per_case=6,
        n_exposures=4,
        horizon=1500,
        site_leave_time=700,
    )


@dataclass
class ChaosResult:
    """One run, reduced to its observable (comparable) outputs."""

    containment_error: float
    #: canonical snapshot trajectory: (time, sorted containment, known).
    snapshots: list
    #: sorted (tag, start, end, values) query alerts, pooled over sites.
    alerts: list
    #: sorted change points pooled over sites.
    changes: list
    #: tag-level migration events (already globally ordered).
    migrations: list
    #: per-kind ledger bytes excluding retransmit/ack overhead.
    data_bytes: dict
    #: per-kind ledger bytes including overhead kinds.
    all_bytes: dict
    overhead_bytes: int
    duplicates_dropped: int
    #: per-site historical archives, serialized — the time-travel store
    #: a crashed-and-recovered site must rebuild bit-identically.
    archives: list = None
    #: sampled historical answers (point containment/location,
    #: trajectory, dwell, provenance, alert scans) per site.
    history: list = None


def run_chaos(
    scenario,
    config: ServiceConfig = CHAOS_CONFIG,
    transport: Transport | None = None,
    crash: tuple[int, int, int] | None = None,
    traces: list | None = None,
) -> ChaosResult:
    """Run the federated cold chain once and canonicalize the outcome.

    ``crash`` is ``(site, crash_time, recover_time)`` — both times must
    fall inside the same inference interval. ``traces`` overrides the
    scenario's traces (the edge-chaos tests pass gateway-rebuilt
    traces here; everything else about the run stays the same).
    """
    traces = traces if traces is not None else scenario.traces
    with Cluster(traces, config, transport=transport) as cluster:
        cluster.add_query(
            "q2",
            lambda site: TemperatureExposureQuery(
                scenario.catalog, exposure_duration=400
            ),
        )
        cluster.set_sensor_streams(
            {site: scenario.sensor_stream(site) for site in range(len(scenario.traces))}
        )
        if crash is not None:
            site, crash_time, recover_time = crash
            cluster.crash(site, crash_time)
            cluster.recover(site, recover_time)
        cluster.run(scenario.horizon)
        return ChaosResult(
            containment_error=cluster.containment_error(scenario.truth),
            snapshots=[
                (snap.time, sorted(snap.containment.items()), sorted(snap.known))
                for snap in cluster.snapshots
            ],
            alerts=sorted(
                (str(alert.key), alert.start_time, alert.end_time, alert.values)
                for node in cluster.nodes
                for alert in node.queries["q2"].alerts
            ),
            changes=sorted(
                cluster.detected_changes(),
                key=lambda c: (c.tag, c.time, str(c.old_container), str(c.new_container)),
            ),
            migrations=cluster.migrations,
            data_bytes=cluster.network.data_bytes_by_kind(),
            all_bytes=dict(cluster.network.bytes_by_kind),
            overhead_bytes=cluster.network.fault_overhead_bytes(),
            duplicates_dropped=sum(n.duplicates_dropped for n in cluster.nodes),
            archives=[encode_archive(node.archive) for node in cluster.nodes],
            history=[_history_probe(node, scenario) for node in cluster.nodes],
        )


def _history_probe(node, scenario) -> list:
    """Canonical time-travel answers served by one site's archive.

    Probes every historical query kind at fixed tags and boundary
    epochs, via the node's local :class:`HistoryService` (no envelopes,
    so the ledger invariant stays untouched).
    """
    tags = sorted(scenario.catalog.frozen_items)[:6] + sorted(
        scenario.catalog.freezer_cases
    )[:2]
    times = list(range(300, scenario.horizon + 1, 300))
    history = node.history
    out = []
    for tag in tags:
        for time in times:
            out.append(("containment", str(tag), time,
                        history.point_containment(tag, time, k=2).rows))
            out.append(("location", str(tag), time,
                        history.point_location(tag, time).rows))
        out.append(("trajectory", str(tag),
                    history.trajectory(tag, 0, scenario.horizon).rows))
        out.append(("dwell", str(tag),
                    history.dwell(tag, 0, scenario.horizon).rows))
        out.append(("provenance", str(tag),
                    history.provenance(tag, scenario.horizon - 1).rows))
    out.append(("alerts", history.alerts().rows))
    return out


def chaos_plan(seed: int) -> FaultPlan:
    """The default all-faults-on-every-link plan used by the matrix."""
    return FaultPlan.chaos(seed, drop=0.25, duplicate=0.2, delay=0.25, max_delay=3)


def chaos_transport(seed: int) -> FaultyTransport:
    return FaultyTransport(chaos_plan(seed))


def edge_flaky_plan(seed: int, traces) -> EdgePlan:
    """A seeded everything-at-once flaky-edge plan for ``traces``.

    One reader goes offline mid-run then burst-replays, feeds
    duplicate/corrupt/shuffle lines, every edge↔gateway link drops,
    duplicates, delays, and reorders, one edge crashes and restarts
    from its spool, and the gateway crashes and recovers from its WAL.
    """
    rng = spawn_rng(seed, "edge-chaos")
    n_edges = sum(len(VendorFeed.split_trace(trace)) for trace in traces)
    horizon = max(trace.horizon for trace in traces)
    t0 = int(rng.integers(horizon // 5, horizon // 2))
    t1 = t0 + int(rng.integers(horizon // 5, 2 * horizon // 5))
    return EdgePlan(
        seed=seed,
        noise=FeedNoise(duplicate=0.1, junk=0.05, shuffle=0.3),
        offline={int(rng.integers(n_edges)): (t0, t1)},
        link_faults=FaultPlan.chaos(
            seed, drop=0.25, duplicate=0.2, delay=0.25, max_delay=3
        ),
        edge_restarts={int(rng.integers(n_edges)): int(rng.integers(t0, horizon))},
        gateway_restarts=(int(rng.integers(horizon // 4, horizon)),),
    )


def run_edge_ingest(scenario, seed: int, workdir: str, **kwargs):
    """Ingest the scenario's traces through a fully flaky edge plane."""
    return run_ingest(
        scenario.traces,
        CHAOS_CONFIG.run_interval,
        workdir,
        plan=edge_flaky_plan(seed, scenario.traces),
        **kwargs,
    )


def assert_traces_identical(rebuilt, originals) -> None:
    """Gateway-rebuilt traces must be bit-identical to the clean ones."""
    assert len(rebuilt) == len(originals)
    for got, want in zip(rebuilt, originals):
        assert got.site == want.site
        assert got.horizon == want.horizon
        assert got.tag_table == want.tag_table
        assert np.array_equal(got.times, want.times)
        assert np.array_equal(got.tag_ids, want.tag_ids)
        assert np.array_equal(got.readers, want.readers)


def assert_chaos_invariant(
    baseline: ChaosResult, chaotic: ChaosResult, expect_overhead: bool = True
) -> None:
    """Bit-identical results; only fault-overhead ledger bytes differ."""
    assert chaotic.containment_error == baseline.containment_error
    assert chaotic.snapshots == baseline.snapshots
    assert chaotic.alerts == baseline.alerts
    assert chaotic.changes == baseline.changes
    assert chaotic.migrations == baseline.migrations
    assert chaotic.data_bytes == baseline.data_bytes
    assert chaotic.history == baseline.history
    assert chaotic.archives == baseline.archives
    if expect_overhead:
        assert chaotic.overhead_bytes > 0
        assert chaotic.all_bytes != baseline.all_bytes
    else:
        assert chaotic.overhead_bytes == 0
