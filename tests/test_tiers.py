"""Tiered segment storage: spill/load bit-identity, LRU, query equivalence.

The tier contract: attaching a :class:`DiskTier` to an archive changes
*where* sealed segments live, never *what* any reader sees —
``encode_archive`` and every query answer stay byte-identical, while
resident memory stays bounded by the tier's LRU.
"""

import numpy as np
import pytest

from repro.archive import encode_archive
from repro.archive.tiers import (
    ArchiveCorruption,
    DiskTier,
    SegmentHandle,
    TieredSegments,
)
from repro.serving.history import HistoryService
from repro.sim.tags import EPC, TagKind

from tests.test_replication import build_archive, grow_archive


def make_segment(rows: int, offset: int = 0):
    """One interval-log-shaped segment: five int64 columns + posteriors."""
    base = np.arange(rows, dtype=np.int64) + offset
    return tuple(base + i for i in range(5)) + (
        np.linspace(0.0, 1.0, rows, dtype=np.float64),
    )


def columns_equal(a, b) -> bool:
    return len(a) == len(b) and all(np.array_equal(x, y) for x, y in zip(a, b))


class TestDiskTier:
    def test_spill_load_roundtrip_is_bit_exact(self, tmp_path):
        tier = DiskTier(str(tmp_path))
        segment = make_segment(17)
        handle = tier.store(segment)
        assert handle.rows == 17
        loaded = tier.load(handle)
        assert columns_equal(loaded, segment)
        assert all(col.dtype == ref.dtype for col, ref in zip(loaded, segment))

    def test_lru_bounds_residency_and_counts(self, tmp_path):
        tier = DiskTier(str(tmp_path), max_resident=2)
        handles = [tier.store(make_segment(4, offset=i)) for i in range(5)]
        for handle in handles:
            tier.load(handle)
        assert tier.resident_count == 2
        assert tier.stats.loads == 5
        assert tier.stats.evictions == 3
        # Touching a resident handle is a cache hit, not a reload.
        tier.load(handles[-1])
        assert tier.stats.cache_hits == 1
        # An evicted handle reloads from disk (the file survives eviction).
        assert columns_equal(tier.load(handles[0]), make_segment(4, offset=0))
        assert tier.stats.loads == 6

    def test_malformed_file_raises_valueerror(self, tmp_path):
        tier = DiskTier(str(tmp_path))
        handle = tier.store(make_segment(4))
        with open(handle.path, "wb") as fh:
            fh.write(b"\xff\xff\xff")
        with pytest.raises(ValueError):
            tier.load(handle)

    def test_truncated_spill_raises_descriptive_corruption(self, tmp_path):
        tier = DiskTier(str(tmp_path))
        handle = tier.store(make_segment(8))
        blob = open(handle.path, "rb").read()
        with open(handle.path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # crash mid-write
        with pytest.raises(ArchiveCorruption, match=handle.path):
            tier.load(handle)
        assert tier.stats.corruptions == 1
        # The intact copy still loads after the file is repaired.
        with open(handle.path, "wb") as fh:
            fh.write(blob)
        assert columns_equal(tier.load(handle), make_segment(8))

    def test_every_bit_flip_is_caught_and_counted(self, tmp_path):
        tier = DiskTier(str(tmp_path), max_resident=1)
        handle = tier.store(make_segment(3))
        blob = bytearray(open(handle.path, "rb").read())
        flips = 0
        for pos in range(0, len(blob), 7):  # sample positions, every byte region
            corrupt = bytearray(blob)
            corrupt[pos] ^= 0x10
            with open(handle.path, "wb") as fh:
                fh.write(bytes(corrupt))
            tier._resident.clear()  # force a disk read
            with pytest.raises(ArchiveCorruption, match="checksum|malformed"):
                tier.load(handle)
            flips += 1
        assert tier.stats.corruptions == flips
        assert tier.stats.loads == 0  # nothing corrupt ever counted loaded

    def test_invalid_configuration(self, tmp_path):
        with pytest.raises(ValueError):
            DiskTier(str(tmp_path), max_resident=0)
        with pytest.raises(ValueError):
            TieredSegments(DiskTier(str(tmp_path)), hot=-1)


class TestTieredSegments:
    def test_list_protocol_with_cold_spill(self, tmp_path):
        tier = DiskTier(str(tmp_path))
        segments = [make_segment(6, offset=i * 10) for i in range(5)]
        tiered = TieredSegments(tier, segments, hot=2)
        assert len(tiered) == 5
        assert tiered.spilled_count == 3  # everything past the hot tail
        assert tiered.row_counts() == [6] * 5
        assert tier.stats.loads == 0  # row_counts never materializes
        for i, segment in enumerate(segments):
            assert columns_equal(tiered[i], segment)
        assert [len(s[0]) for s in tiered[1:4]] == [6, 6, 6]
        assert sum(len(s[0]) for s in tiered) == 30

    def test_append_spills_as_segments_age_out(self, tmp_path):
        tier = DiskTier(str(tmp_path))
        tiered = TieredSegments(tier, hot=1)
        for i in range(4):
            tiered.append(make_segment(3, offset=i))
        assert tiered.spilled_count == 3
        assert isinstance(tiered._entries[0], SegmentHandle)

    def test_copy_shares_handles(self, tmp_path):
        tier = DiskTier(str(tmp_path))
        tiered = TieredSegments(tier, [make_segment(3, offset=i) for i in range(4)], hot=1)
        spills_before = tier.stats.spills
        view = tiered.copy()
        assert tier.stats.spills == spills_before  # no re-spill
        assert len(view) == 4
        # Appending to the original does not grow the copy.
        tiered.append(make_segment(3, offset=9))
        assert len(view) == 4 and len(tiered) == 5


class TestTieredArchive:
    def test_encoding_and_answers_survive_tiering(self, tmp_path):
        plain = build_archive(tags=6, boundaries=6)
        tiered = build_archive(tags=6, boundaries=6)
        tiered.attach_tier(DiskTier(str(tmp_path), max_resident=2), hot_segments=1)
        assert tiered.location.segments.spilled_count > 0
        assert encode_archive(tiered) == encode_archive(plain)
        ref, svc = HistoryService(plain), HistoryService(tiered)
        tag = EPC(TagKind.ITEM, 0)
        for time in (0, 250, 500):
            assert svc.point_location(tag, time, k=2) == ref.point_location(tag, time, k=2)
            assert svc.point_containment(tag, time) == ref.point_containment(tag, time)
        assert svc.trajectory(tag, 0, -1) == ref.trajectory(tag, 0, -1)
        assert svc.dwell(tag, 0, -1) == ref.dwell(tag, 0, -1)
        assert svc.alerts() == ref.alerts()

    def test_appends_keep_spilling_and_answers_tracking(self, tmp_path):
        plain = build_archive(tags=4, boundaries=4)
        tiered = build_archive(tags=4, boundaries=4)
        tiered.attach_tier(DiskTier(str(tmp_path)), hot_segments=1)
        grow_archive(plain, 4, 4, tags=4)
        grow_archive(tiered, 4, 4, tags=4)
        assert encode_archive(tiered) == encode_archive(plain)

    def test_snapshot_isolation_over_a_tier(self, tmp_path):
        archive = build_archive(tags=4, boundaries=4)
        archive.attach_tier(DiskTier(str(tmp_path)), hot_segments=1)
        snap = HistoryService(archive).snapshot()
        tag = EPC(TagKind.ITEM, 1)
        before = snap.trajectory(tag, 0, -1)
        grow_archive(archive, 4, 3, tags=4)
        assert snap.trajectory(tag, 0, -1) == before
        assert HistoryService(archive).trajectory(tag, 0, -1) != before
