"""Tests for stream operators, pattern matching, and state encoding."""

from typing import NamedTuple

import pytest
from hypothesis import given, strategies as st

from repro.streams.engine import StreamScheduler, merge_by_time
from repro.streams.operators import (
    WINDOW_UPDATE_PRIORITY,
    Filter,
    LatestByKey,
    Map,
    NowJoin,
)
from repro.streams.pattern import KleeneDurationPattern, PatternState
from repro.streams.state import decode_pattern_state, encode_pattern_state


class Tick(NamedTuple):
    time: int
    key: str
    value: float


class TestOperators:
    def test_filter_and_map_chain(self):
        out = []
        filt = Filter(lambda t: t.value > 0)
        mapper = Map(lambda t: t.value * 2)
        filt.subscribe(mapper)
        mapper.subscribe(out.append)
        for tick in (Tick(0, "a", 1.0), Tick(1, "a", -1.0), Tick(2, "a", 3.0)):
            filt.push(tick)
        assert out == [2.0, 6.0]

    def test_latest_by_key_keeps_newest(self):
        table = LatestByKey(lambda t: t.key)
        table.push(Tick(0, "a", 1.0))
        table.push(Tick(5, "a", 9.0))
        table.push(Tick(3, "b", 2.0))
        assert table.lookup("a").value == 9.0
        assert table.lookup("b").value == 2.0
        assert table.lookup("zzz") is None
        assert len(table) == 2

    def test_now_join_probes_table(self):
        table = LatestByKey(lambda t: t.key)
        table.push(Tick(0, "a", 20.0))
        out = []
        join = NowJoin(
            table,
            probe_key=lambda t: t.key,
            combine=lambda left, right: (left.time, right.value),
            where=lambda left, right: right.value > 10,
        )
        join.subscribe(out.append)
        join.push(Tick(7, "a", 0.0))
        join.push(Tick(8, "missing", 0.0))
        table.push(Tick(9, "a", 5.0))
        join.push(Tick(10, "a", 0.0))  # filtered by where
        assert out == [(7, 20.0)]


class TestScheduler:
    def test_merge_orders_by_time(self):
        a = [Tick(0, "a", 0), Tick(4, "a", 0)]
        b = [Tick(1, "b", 0), Tick(3, "b", 0)]
        merged = list(merge_by_time(a, b))
        assert [t.time for t in merged] == [0, 1, 3, 4]

    def test_merge_tie_break_is_stable(self):
        """The documented contract: at equal timestamps, the earlier
        argument stream wins; within a stream, original order holds."""
        a = [Tick(5, "a1", 0), Tick(5, "a2", 0)]
        b = [Tick(5, "b1", 0), Tick(5, "b2", 0)]
        merged = list(merge_by_time(a, b))
        assert [t.key for t in merged] == ["a1", "a2", "b1", "b2"]
        # And swapping the argument order swaps the winner.
        merged = list(merge_by_time(b, a))
        assert [t.key for t in merged] == ["b1", "b2", "a1", "a2"]

    def test_routes_by_type(self):
        class Other(NamedTuple):
            time: int

        ticks, others = [], []
        sched = StreamScheduler()
        sched.route(Tick, ticks.append)
        sched.route(Other, others.append)
        n = sched.run([Tick(0, "a", 0), Tick(2, "a", 0)], [Other(1)])
        assert n == 3
        assert len(ticks) == 2 and len(others) == 1

    def test_dispatch_cache_handles_subclasses(self):
        class Special(Tick):
            pass

        base_hits, special_hits = [], []
        sched = StreamScheduler()
        sched.route(Tick, base_hits.append)
        sched.route(Special, special_hits.append)
        sched.run([Tick(0, "a", 0), Special(1, "b", 0)])
        # A Special tuple matches both routes (isinstance semantics);
        # a plain Tick matches only the base route.
        assert len(base_hits) == 2
        assert len(special_hits) == 1
        # The resolved chains are cached per exact type.
        assert len(sched.handlers_for(Tick)) == 1
        assert len(sched.handlers_for(Special)) == 2

    def test_late_route_invalidates_cache(self):
        first, second = [], []
        sched = StreamScheduler()
        sched.route(Tick, first.append)
        sched.run([Tick(0, "a", 0)])  # caches Tick → (first,)
        sched.route(Tick, second.append)
        sched.run([Tick(1, "a", 0)])
        assert len(first) == 2 and len(second) == 1

    def test_unrouted_types_are_counted_but_dropped(self):
        class Other(NamedTuple):
            time: int

        sched = StreamScheduler()
        hits = []
        sched.route(Tick, hits.append)
        assert sched.run([Other(0)], [Tick(1, "a", 0)]) == 2
        assert len(hits) == 1


class TestSubscriptionPriority:
    def test_priority_orders_delivery(self):
        seen = []
        source = Map(lambda t: t)
        source.subscribe(lambda t: seen.append("late"), priority=1)
        source.subscribe(lambda t: seen.append("early"))  # default 0
        source.subscribe(lambda t: seen.append("early2"))
        source.push(Tick(0, "a", 0))
        assert seen == ["early", "early2", "late"]

    def test_join_probes_pre_update_relation(self):
        """With the window update at low priority, a tuple probing a
        window built from the same stream sees the *previous* row —
        CQL's pre-update [Now] semantics."""
        out = []
        source = Map(lambda t: t)
        table = LatestByKey(lambda t: t.key)
        join = NowJoin(
            table, probe_key=lambda t: t.key,
            combine=lambda left, right: (left.time, right.time),
        )
        join.subscribe(out.append)
        source.subscribe(join)
        source.subscribe(table, priority=WINDOW_UPDATE_PRIORITY)
        source.push(Tick(1, "a", 0))  # no previous row: probe misses
        source.push(Tick(2, "a", 0))  # sees the t=1 row
        assert out == [(2, 1)]


class TestPattern:
    def make(self, duration=10):
        return KleeneDurationPattern(
            key_fn=lambda t: t.key,
            time_fn=lambda t: t.time,
            value_fn=lambda t: t.value,
            duration=duration,
        )

    def test_fires_after_duration(self):
        pattern = self.make(duration=10)
        for time in (0, 5, 11):
            pattern.push(Tick(time, "x", float(time)))
        assert len(pattern.alerts) == 1
        alert = pattern.alerts[0]
        assert alert.key == "x"
        assert alert.start_time == 0 and alert.end_time == 11
        assert alert.values == (0.0, 5.0, 11.0)

    def test_does_not_fire_below_duration(self):
        pattern = self.make(duration=10)
        pattern.push(Tick(0, "x", 1.0))
        pattern.push(Tick(10, "x", 1.0))  # span must strictly exceed
        assert pattern.alerts == []

    def test_reset_breaks_run(self):
        pattern = self.make(duration=10)
        pattern.push(Tick(0, "x", 1.0))
        pattern.reset_key("x", 4)
        pattern.push(Tick(5, "x", 1.0))
        pattern.push(Tick(12, "x", 1.0))  # span 7 from restart: no alert
        assert pattern.alerts == []
        pattern.push(Tick(16, "x", 1.0))  # span 11: fires
        assert len(pattern.alerts) == 1

    def test_partitions_are_independent(self):
        pattern = self.make(duration=5)
        pattern.push(Tick(0, "x", 1.0))
        pattern.push(Tick(0, "y", 1.0))
        pattern.push(Tick(6, "x", 1.0))
        assert [a.key for a in pattern.alerts] == ["x"]

    def test_fires_once_per_run(self):
        pattern = self.make(duration=5)
        for time in (0, 6, 7, 8):
            pattern.push(Tick(time, "x", 1.0))
        assert len(pattern.alerts) == 1

    def test_max_gap_breaks_stale_runs(self):
        pattern = KleeneDurationPattern(
            key_fn=lambda t: t.key,
            time_fn=lambda t: t.time,
            value_fn=lambda t: t.value,
            duration=10,
            max_gap=20,
        )
        pattern.push(Tick(0, "x", 1.0))
        pattern.push(Tick(50, "x", 2.0))  # gap 50 > 20: fresh run at 50
        assert pattern.alerts == []
        assert pattern.state_of("x").start_time == 50
        pattern.push(Tick(61, "x", 3.0))  # span 11 from the restart
        assert len(pattern.alerts) == 1
        assert pattern.alerts[0].start_time == 50

    def test_max_gap_none_keeps_runs_alive(self):
        pattern = self.make(duration=10)
        pattern.push(Tick(0, "x", 1.0))
        pattern.push(Tick(500, "x", 2.0))  # default: any silence is fine
        assert len(pattern.alerts) == 1

    def test_max_values_caps_state(self):
        pattern = KleeneDurationPattern(
            key_fn=lambda t: t.key,
            time_fn=lambda t: t.time,
            value_fn=lambda t: t.value,
            duration=1000,
            max_values=4,
        )
        for time in range(20):
            pattern.push(Tick(time, "x", 1.0))
        assert len(pattern.state_of("x").values) == 4

    def test_absorb_into_empty_adopts(self):
        pattern = self.make(duration=10)
        pattern.push(Tick(0, "x", 1.0))
        other = self.make(duration=10)
        other.absorb_state("x", pattern.export_state("x"))
        other.push(Tick(11, "x", 2.0))
        assert len(other.alerts) == 1

    def test_absorb_merges_with_local_partial(self):
        """A migrated run merges with the partial formed at the new
        site: earliest start wins, so the duration spans the hand-off."""
        origin = self.make(duration=10)
        origin.push(Tick(0, "x", 1.0))
        origin.push(Tick(4, "x", 2.0))
        local = self.make(duration=10)
        local.push(Tick(7, "x", 3.0))  # new site's own young partial
        local.absorb_state("x", origin.export_state("x"))
        state = local.state_of("x")
        assert state.stage == 1
        assert state.start_time == 0
        assert state.values == [1.0, 2.0, 3.0]
        local.push(Tick(11, "x", 4.0))  # 11 > 0 + 10: fires on merge
        assert len(local.alerts) == 1
        assert local.alerts[0].start_time == 0

    def test_absorb_fires_when_merged_span_satisfies_duration(self):
        """If the combined cross-site span already exceeds the duration
        at hand-off time, the alert fires at the merge — there may be
        no further qualifying event to trigger it later."""
        origin = self.make(duration=10)
        origin.push(Tick(0, "x", 1.0))
        origin.push(Tick(4, "x", 2.0))
        local = self.make(duration=10)
        local.push(Tick(11, "x", 3.0))  # last local event before hand-off
        local.absorb_state("x", origin.export_state("x"))
        assert len(local.alerts) == 1
        alert = local.alerts[0]
        assert alert.start_time == 0 and alert.end_time == 11
        assert local.state_of("x").stage == 2
        local.push(Tick(30, "x", 4.0))
        assert len(local.alerts) == 1  # no duplicate for the same run

    def test_absorb_fired_state_suppresses_refire(self):
        origin = self.make(duration=5)
        origin.push(Tick(0, "x", 1.0))
        origin.push(Tick(6, "x", 1.0))  # fires at the origin site
        assert len(origin.alerts) == 1
        local = self.make(duration=5)
        local.push(Tick(8, "x", 1.0))
        local.absorb_state("x", origin.export_state("x"))
        local.push(Tick(20, "x", 1.0))
        assert local.alerts == []  # the same run does not alert twice

    def test_absorb_quiescent_state_is_inert(self):
        local = self.make(duration=10)
        local.push(Tick(3, "x", 1.0))
        from repro.streams.pattern import PatternState

        local.absorb_state("x", PatternState())  # stage-0 incoming
        state = local.state_of("x")
        assert state.stage == 1 and state.start_time == 3

    def test_export_import_state(self):
        pattern = self.make(duration=10)
        pattern.push(Tick(0, "x", 1.0))
        exported = pattern.export_state("x")
        other = self.make(duration=10)
        other.import_state("x", exported)
        other.push(Tick(11, "x", 2.0))
        assert len(other.alerts) == 1


class TestStateEncoding:
    @given(
        stage=st.integers(0, 2),
        start=st.integers(0, 10**6),
        last=st.integers(0, 10**6),
        values=st.lists(st.floats(-100, 100, width=32), max_size=16),
    )
    def test_round_trip(self, stage, start, last, values):
        state = PatternState(stage, start, last, list(values))
        back = decode_pattern_state(encode_pattern_state(state))
        assert back.stage == stage
        assert back.start_time == start
        assert back.last_time == last
        assert back.values == pytest.approx(values)
