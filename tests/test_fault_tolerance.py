"""Fault-tolerant site runtime: chaos transport, at-least-once
delivery, duplicate idempotency, checkpoint/restore, and crash
recovery — all verified against the deterministic harness invariant:
faults may only change ledger overhead, never results.

Set ``CHAOS_SEED`` (CI matrix) to verify one extra fault-plan seed.
"""

import os

import pytest

from chaos import (
    CHAOS_CONFIG,
    assert_chaos_invariant,
    chaos_plan,
    chaos_scenario,
    chaos_transport,
    run_chaos,
)
from repro.core.collapsed import CollapsedState
from repro.core.service import ServiceConfig
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import (
    Cluster,
    Envelope,
    FaultPlan,
    FaultyTransport,
    InProcessTransport,
    LinkFaults,
    ProcessTransport,
    SiteNode,
    ThreadedTransport,
)
from repro.runtime.envelope import (
    INFERENCE_STATE,
    MIGRATE_REQUEST,
    QUERY_STATE,
    encode_query_bundle,
    encode_state_bundle,
    encode_tag_list,
)
from repro.sim.tags import EPC, TagKind
from repro.streams.pattern import PatternState
from repro.streams.state import encode_pattern_state

# CHAOS_SEED *replaces* the built-in seeds: the CI matrix runs one
# fresh seed per job without re-running the defaults the tier-1 job
# already covers.
CHAOS_SEEDS = (
    [int(os.environ["CHAOS_SEED"])] if os.environ.get("CHAOS_SEED") else [11, 23, 47]
)

#: per-seed crash schedules: (site, crash_time, recover_time), all
#: inside one interval of the 300-epoch schedule.
CRASHES = {seed: (seed % 2, 910 + seed % 50, 1150) for seed in CHAOS_SEEDS}


@pytest.fixture(scope="module")
def scenario():
    return chaos_scenario()


@pytest.fixture(scope="module")
def baseline(scenario):
    """The fault-free in-process reference run."""
    return run_chaos(scenario)


class TestChaosInvariant:
    """The tentpole: seeded faults + crash never change results."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_faults_with_crash_bit_identical(self, scenario, baseline, seed):
        chaotic = run_chaos(
            scenario, transport=chaos_transport(seed), crash=CRASHES[seed]
        )
        assert_chaos_invariant(baseline, chaotic)

    def test_fault_plan_injects_every_fault_kind(self, scenario, baseline):
        transport = chaos_transport(CHAOS_SEEDS[0])
        run_chaos(scenario, transport=transport)
        assert transport.injected["drop"] > 0
        assert transport.injected["duplicate"] > 0
        assert transport.injected["delay"] > 0

    def test_asymmetric_link_plan(self, scenario, baseline):
        """Faults confined to one direction of one link still converge."""
        plan = FaultPlan(
            seed=5,
            links=(((1, 0), LinkFaults(drop=0.5, duplicate=0.3, max_drops=6)),),
        )
        chaotic = run_chaos(scenario, transport=FaultyTransport(plan))
        assert_chaos_invariant(baseline, chaotic)

    def test_crash_on_reliable_transport(self, scenario, baseline):
        """Checkpoint recovery is independent of delivery faults."""
        chaotic = run_chaos(scenario, crash=(1, 950, 980))
        assert_chaos_invariant(baseline, chaotic, expect_overhead=False)

    def test_dedup_layer_suppressed_duplicates(self, scenario, baseline):
        chaotic = run_chaos(scenario, transport=chaos_transport(CHAOS_SEEDS[0]))
        assert chaotic.duplicates_dropped > 0

    def test_crash_scheduled_mid_session_still_bit_identical(self, scenario, baseline):
        """Regression: scheduling a crash *after* boundaries have been
        processed (no checkpoints exist yet) must capture the current
        state at schedule time — recovery used to silently skip the
        restore and resume with amnesia."""
        with Cluster(scenario.traces, CHAOS_CONFIG) as cluster:
            cluster.add_query(
                "q2",
                lambda site: TemperatureExposureQuery(
                    scenario.catalog, exposure_duration=400
                ),
            )
            cluster.set_sensor_streams(
                {s: scenario.sensor_stream(s) for s in range(len(scenario.traces))}
            )
            cluster.run(900)
            cluster.crash(1, 950)
            cluster.recover(1, 980)
            cluster.run(scenario.horizon)
            alerts = sorted(
                (str(a.key), a.start_time, a.end_time, a.values)
                for node in cluster.nodes
                for a in node.queries["q2"].alerts
            )
            assert alerts == baseline.alerts
            assert cluster.migrations == baseline.migrations
            assert (
                cluster.containment_error(scenario.truth)
                == baseline.containment_error
            )

    def test_recover_with_lost_checkpoint_raises(self, scenario):
        """A recovery that would silently lose state must fail loudly."""
        with Cluster(scenario.traces, CHAOS_CONFIG) as cluster:
            cluster.add_query(
                "q2",
                lambda site: TemperatureExposureQuery(
                    scenario.catalog, exposure_duration=400
                ),
            )
            cluster.set_sensor_streams(
                {s: scenario.sensor_stream(s) for s in range(len(scenario.traces))}
            )
            cluster.run(900)
            cluster.crash(1, 950)
            cluster.recover(1, 980)
            cluster._checkpoints.clear()  # simulate checkpoint storage loss
            with pytest.raises(RuntimeError, match="no checkpoint"):
                cluster.run(scenario.horizon)


class TestCrossTransportEquivalence:
    """Satellite: identical trajectories and per-kind ledger totals
    across in-process, threaded, and faulty transports (modulo the
    retransmit/ack overhead kinds)."""

    @pytest.mark.parametrize(
        "make_transport",
        [
            pytest.param(lambda: None, id="inprocess"),
            pytest.param(ThreadedTransport, id="threaded"),
            pytest.param(lambda: chaos_transport(31), id="faulty-31"),
            pytest.param(
                lambda: FaultyTransport(chaos_plan(31), inner=ThreadedTransport()),
                id="faulty-over-threaded",
            ),
            pytest.param(lambda: ProcessTransport(n_workers=2), id="process"),
            pytest.param(
                lambda: FaultyTransport(
                    chaos_plan(31), inner=ProcessTransport(n_workers=2)
                ),
                id="faulty-over-process",
            ),
        ],
    )
    def test_trajectories_and_ledgers_match(self, scenario, baseline, make_transport):
        result = run_chaos(scenario, transport=make_transport())
        assert result.snapshots == baseline.snapshots
        assert result.containment_error == baseline.containment_error
        assert result.alerts == baseline.alerts
        assert result.data_bytes == baseline.data_bytes
        assert result.migrations == baseline.migrations


class TestProcessChaos:
    """Tentpole acceptance: the process-parallel transport is invisible
    to every observable result — under seeded chaos faults, a mid-run
    crash, and a shard rebalance that moves the crash site to a
    *different* worker before its recovery (so the checkpoint restores
    onto a worker that never originally hosted the site).

    Named so the CI chaos matrix (``-k TestChaosInvariant``) does not
    re-run these heavy process runs per seed job.
    """

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_faulty_process_with_crash_and_rebalance(self, scenario, baseline, seed):
        site, _, _ = CRASHES[seed]
        # Two sites on two workers shard site->worker identically, so
        # moving the crash site at the first boundary guarantees its
        # later recovery lands on the other worker.
        # rebalance=False keeps the scheduled move the *only* move, so
        # the shard-map assertions below stay exact (the auto policy is
        # unit-tested separately and may legitimately move sites back).
        inner = ProcessTransport(
            n_workers=2, rebalance=False, scheduled_moves={1: (site, 1 - site)}
        )
        chaotic = run_chaos(
            scenario,
            transport=FaultyTransport(chaos_plan(seed), inner=inner),
            crash=CRASHES[seed],
        )
        assert_chaos_invariant(baseline, chaotic)
        assert inner.ledger.rebalances == 1
        assert inner.shard_map[site] == 1 - site

    def test_worker_gauges_surface_in_ledger(self, scenario):
        transport = ProcessTransport(n_workers=2)
        run_chaos(scenario, transport=transport)
        rows = transport.ledger.worker_rows()
        assert [row[0] for row in rows] == [0, 1]
        assert {worker: sites for worker, sites, _, _ in rows} == {0: 1, 1: 1}
        # Both shards exchanged envelopes with the rest of the federation.
        assert all(bytes_in > 0 and bytes_out > 0 for _, _, bytes_in, bytes_out in rows)


def make_node(scenario, site=1):
    config = ServiceConfig(run_interval=300, recent_history=600, truncation="cr")
    node = SiteNode(scenario.traces[site], config)
    node.bind(InProcessTransport())
    return node


class TestDuplicateIdempotency:
    """Satellite: replaying a delivered envelope never double-applies."""

    def test_inference_state_replay(self, scenario):
        node = make_node(scenario)
        tag = EPC(TagKind.ITEM, 3)
        case = EPC(TagKind.CASE, 1)
        state = CollapsedState(tag, {case: -1.0}, case, None)
        env = Envelope(
            0, node.site, INFERENCE_STATE,
            encode_state_bundle({tag: state.to_bytes()}), time=300, seq=1,
        )
        node.handle(env)
        node.handle(env)  # duplicated delivery
        assert node.duplicates_dropped == 1
        assert len(node.migrations_in) == 1
        assert node.service.prior_weights[tag] == pytest.approx({case: -1.0})

    def test_query_state_replay_does_not_refire_alert(self, scenario):
        node = make_node(scenario)
        node.add_query(
            "q2",
            TemperatureExposureQuery(scenario.catalog, exposure_duration=400),
        )
        tag = EPC(TagKind.ITEM, 3)
        # A migrated run whose span already satisfies the duration: the
        # alert fires once at merge time.
        migrated = PatternState(stage=1, start_time=0, last_time=500, values=[12.0])
        payload = encode_query_bundle(
            {"q2": {tag: encode_pattern_state(migrated)}}
        )
        env = Envelope(0, node.site, QUERY_STATE, payload, time=600, seq=1)
        node.handle(env)
        assert len(node.queries["q2"].alerts) == 1
        node.handle(env)  # duplicated delivery
        assert len(node.queries["q2"].alerts) == 1
        assert node.duplicates_dropped == 1

    def test_migrate_request_replay_serves_once(self, scenario):
        node = make_node(scenario, site=0)
        node.service.run_at(900)
        served = sorted(node.service.containment)[:2]
        env = Envelope(
            1, node.site, MIGRATE_REQUEST, encode_tag_list(served), time=900, seq=1
        )
        node.handle(env)
        sent_once = node._transport.ledger.messages_by_kind[INFERENCE_STATE]
        node.handle(env)
        assert node._transport.ledger.messages_by_kind[INFERENCE_STATE] == sent_once
        assert node.duplicates_dropped == 1

    def test_unsequenced_envelopes_bypass_dedup(self, scenario):
        """seq=0 control traffic keeps the legacy at-most-once path."""
        node = make_node(scenario)
        tag = EPC(TagKind.ITEM, 9)
        state = CollapsedState(tag, {}, EPC(TagKind.CASE, 2), None)
        env = Envelope(
            0, node.site, INFERENCE_STATE,
            encode_state_bundle({tag: state.to_bytes()}), time=300,
        )
        node.handle(env)
        node.handle(env)
        assert node.duplicates_dropped == 0
        assert len(node.migrations_in) == 2


class TestCheckpointRestore:
    """Site checkpoints round-trip every piece of volatile state."""

    def test_snapshot_restore_round_trip(self, scenario):
        config = CHAOS_CONFIG
        with Cluster(scenario.traces, config) as cluster:
            cluster.add_query(
                "q2",
                lambda site: TemperatureExposureQuery(
                    scenario.catalog, exposure_duration=400
                ),
            )
            cluster.set_sensor_streams(
                {s: scenario.sensor_stream(s) for s in range(len(scenario.traces))}
            )
            cluster.run(900)
            node = cluster.nodes[1]
            checkpoint = node.snapshot()
            before = {
                "containment": dict(node.service.containment),
                "valid_from": dict(node.service.valid_from),
                "priors": {t: dict(w) for t, w in node.service.prior_weights.items()},
                "last": {t: dict(w) for t, w in node.service.last_weights.items()},
                "regions": dict(node.service.critical_regions),
                "changes": list(node.service.changes),
                "seen": set(node.seen),
                "migrations": list(node.migrations_in),
                "sensor_pos": node._sensor_pos,
                "link_tx": dict(node._link_tx),
                "link_rx": {s: set(q) for s, q in node._link_rx.items()},
                "pattern": dict(node.queries["q2"].pattern.states),
                "alerts": list(node.queries["q2"].alerts),
                "temps": dict(node.queries["q2"].temperature.table),
            }
            node.reset(
                {"q2": TemperatureExposureQuery(scenario.catalog, exposure_duration=400)}
            )
            assert node.service.containment == {}
            assert node.seen == set()
            node.restore(checkpoint)
            assert node.service.containment == before["containment"]
            assert node.service.valid_from == before["valid_from"]
            assert node.service.prior_weights == before["priors"]
            assert node.service.last_weights == before["last"]
            assert node.service.critical_regions == before["regions"]
            assert node.service.changes == before["changes"]
            assert node.seen == before["seen"]
            assert node.migrations_in == before["migrations"]
            assert node._sensor_pos == before["sensor_pos"]
            assert node._link_tx == before["link_tx"]
            assert node._link_rx == before["link_rx"]
            assert node.queries["q2"].pattern.states == before["pattern"]
            assert node.queries["q2"].alerts == before["alerts"]
            assert node.queries["q2"].temperature.table == before["temps"]
            # A restored node checkpoints back to the identical bytes.
            assert node.snapshot() == checkpoint

    def test_restore_rejects_wrong_site(self, scenario):
        node0 = make_node(scenario, site=0)
        node1 = make_node(scenario, site=1)
        with pytest.raises(ValueError, match="site"):
            node1.restore(node0.snapshot())

    def test_restore_rejects_corrupt_checkpoint(self, scenario):
        node = make_node(scenario)
        data = node.snapshot()
        for cut in (0, 1, len(data) // 2, len(data) - 1):
            with pytest.raises(ValueError):
                node.restore(data[:cut])

    def test_snapshot_requires_query_hooks(self, scenario):
        node = make_node(scenario)

        class HookLess:
            def on_event(self, event):  # pragma: no cover - never called
                pass

        node.add_query("opaque", HookLess())
        with pytest.raises(ValueError, match="snapshot_state"):
            node.snapshot()


class TestCrashScheduling:
    def test_unrecovered_crash_raises(self, scenario):
        with Cluster(scenario.traces, CHAOS_CONFIG) as cluster:
            cluster.add_query(
                "q2",
                lambda site: TemperatureExposureQuery(
                    scenario.catalog, exposure_duration=400
                ),
            )
            cluster.crash(1, 950)
            with pytest.raises(RuntimeError, match="still down"):
                cluster.run(scenario.horizon)

    def test_recover_without_crash_raises(self, scenario):
        with Cluster(scenario.traces, CHAOS_CONFIG) as cluster:
            cluster.recover(1, 950)
            with pytest.raises(RuntimeError, match="not down"):
                cluster.run(scenario.horizon)

    def test_schedule_in_past_rejected(self, scenario):
        with Cluster(scenario.traces, CHAOS_CONFIG) as cluster:
            cluster.run(300)
            with pytest.raises(ValueError, match="already processed"):
                cluster.crash(0, 200)

    def test_unknown_site_rejected(self, scenario):
        with Cluster(scenario.traces, CHAOS_CONFIG) as cluster:
            with pytest.raises(ValueError, match="unknown site"):
                cluster.crash(9, 500)


class TestSyncConvergence:
    def test_round_limit_scales_with_plan(self):
        """A plan whose drop cap exceeds the default 64 rounds is still
        valid: the barrier budget grows with it (finding: a fixed cap
        rejected plans that guarantee delivery by construction)."""
        small = FaultyTransport(FaultPlan.chaos(1))
        assert small.sync_round_limit == 64
        big = FaultyTransport(
            FaultPlan(seed=1, default=LinkFaults(drop=0.9, max_drops=100))
        )
        assert big.sync_round_limit == 2 * 102 + 8

    def test_high_drop_cap_plan_still_converges(self, scenario, baseline):
        plan = FaultPlan(seed=9, default=LinkFaults(drop=0.6, max_drops=80))
        chaotic = run_chaos(scenario, transport=FaultyTransport(plan))
        assert_chaos_invariant(baseline, chaotic)

    def test_sync_raises_when_plan_never_delivers(self, scenario):
        """An (effectively) always-dropping link must make the barrier
        fail loudly instead of spinning forever."""
        plan = FaultPlan(
            seed=1, default=LinkFaults(drop=1 - 1e-12, max_drops=10**9)
        )
        with pytest.raises(RuntimeError, match="did not converge"):
            run_chaos(scenario, transport=FaultyTransport(plan))
