"""Serving-tier routing: hash ring, two-choice balancing, pools, tenants.

Runs against small synthetic archives behind :class:`ArchivePublisher`
and :class:`ArchiveReplica` endpoints on an in-process transport — no
cluster needed — and checks that routing choices change only *where*
reads are served, never their answers.
"""

import pytest

from repro.serving import (
    ArchivePublisher,
    ArchiveReplica,
    Backpressure,
    FrontendPool,
    HistoryRequest,
    QueryFrontend,
    TenantPolicy,
    replica_site_id,
)
from repro.serving.routing import HashRing
from repro.runtime import InProcessTransport
from repro.sim.tags import EPC, TagKind

from tests.test_replication import build_archive


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [f"tag-{i}" for i in range(200)]
        first = HashRing(range(4))
        second = HashRing(range(4))
        assert [first.route(k) for k in keys] == [second.route(k) for k in keys]

    def test_distribution_is_roughly_uniform(self):
        ring = HashRing(range(4))
        counts = {e: 0 for e in range(4)}
        for i in range(2000):
            counts[ring.route(f"key-{i}")] += 1
        assert all(count > 200 for count in counts.values())  # >10% each

    def test_owners_walks_distinct_endpoints(self):
        ring = HashRing(range(4))
        for i in range(50):
            key = f"key-{i}"
            pair = ring.owners(key, 2)
            assert len(pair) == 2 and pair[0] != pair[1]
            assert pair[0] == ring.route(key)
        # Asking for more owners than endpoints yields them all.
        assert set(ring.owners("anything", 10)) == set(range(4))

    def test_removing_an_endpoint_only_remaps_its_keys(self):
        keys = [f"key-{i}" for i in range(500)]
        full = HashRing(range(4))
        reduced = HashRing(range(3))  # endpoint 3 removed
        for key in keys:
            if full.route(key) != 3:
                assert reduced.route(key) == full.route(key)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([1, 1])
        with pytest.raises(ValueError):
            HashRing([1], vnodes=0)
        with pytest.raises(ValueError):
            HashRing([1]).owners("key", 0)


def serve_topology(n_replicas: int = 2):
    """Two primary archives, each with replicas, on one transport."""
    transport = InProcessTransport()
    archives = [build_archive(site=s) for s in range(2)]
    for archive in archives:
        ArchivePublisher(archive).bind(transport)
    replica_map = {}
    for archive in archives:
        ids = []
        for r in range(n_replicas):
            rid = replica_site_id(archive.site, r, 2)
            replica = ArchiveReplica(archive.site, rid)
            replica.bind(transport)
            replica.catch_up()
            ids.append(rid)
        replica_map[archive.site] = ids
    return transport, archives, replica_map


def probe_queries(count: int = 60):
    """Cache-distinct point queries over a handful of tags."""
    return [
        HistoryRequest(0, "containment", EPC(TagKind.ITEM, i % 5), 5 * i, k=1)
        for i in range(count)
    ]


class TestReplicaRouting:
    def test_two_choice_balances_a_single_hot_tag(self):
        transport, _, replica_map = serve_topology()
        frontend = QueryFrontend(site_id=-9)
        frontend.bind(transport, [0, 1], replicas=replica_map, read_preference="replica")
        tag = EPC(TagKind.ITEM, 0)
        session = frontend.session()
        for time in range(100):  # distinct times: no cache hits
            session.containment(tag, time)
        for site in (0, 1):
            sent = [frontend._endpoint_sent.get(r, 0) for r in replica_map[site]]
            assert sum(sent) == 100
            # The tag's two owners split its load nearly evenly.
            assert abs(sent[0] - sent[1]) <= 1

    def test_replica_preference_never_touches_primaries(self):
        transport, _, replica_map = serve_topology()
        frontend = QueryFrontend(site_id=-9)
        frontend.bind(transport, [0, 1], replicas=replica_map, read_preference="replica")
        frontend.execute_many(probe_queries())
        assert frontend._endpoint_sent
        assert all(e <= -100 for e in frontend._endpoint_sent)

    def test_replica_answers_match_primary_answers(self):
        transport, _, replica_map = serve_topology()
        primary_only = QueryFrontend(site_id=-9)
        primary_only.bind(transport, [0, 1])
        replicated = QueryFrontend(site_id=-10)
        replicated.bind(transport, [0, 1], replicas=replica_map, read_preference="replica")
        queries = probe_queries()
        assert replicated.execute_many(queries) == primary_only.execute_many(queries)

    def test_dead_replica_fails_over_to_primary(self):
        transport, _, _ = serve_topology(n_replicas=0)
        dead = [replica_site_id(site, 0, 2) for site in (0, 1)]
        for rid in dead:
            transport.register(rid, lambda env: None)  # bound but silent
        frontend = QueryFrontend(site_id=-9)
        frontend.bind(
            transport, [0, 1],
            replicas={0: [dead[0]], 1: [dead[1]]},
            read_preference="replica",
        )
        baseline = QueryFrontend(site_id=-10)
        baseline.bind(transport, [0, 1])
        queries = probe_queries(10)
        assert frontend.execute_many(queries) == baseline.execute_many(queries)
        assert frontend.stats.retransmits > 0

    def test_invalid_read_preference(self):
        frontend = QueryFrontend()
        with pytest.raises(ValueError, match="read preference"):
            frontend.bind(InProcessTransport(), [0], replicas={0: [-101]},
                          read_preference="nearest")


class TestFrontendPool:
    def test_partitioning_is_stable_and_answers_match(self):
        transport, _, _ = serve_topology(n_replicas=0)
        pool = FrontendPool(size=3)
        pool.bind(transport, [0, 1])
        single = QueryFrontend(site_id=-9)
        single.bind(transport, [0, 1])
        queries = probe_queries()
        assert pool.execute_many(queries) == single.execute_many(queries)
        # Each tag consistently lands on one frontend of the three.
        for i in range(5):
            tag = EPC(TagKind.ITEM, i)
            owners = {pool.frontend_for(tag).site_id for _ in range(10)}
            assert len(owners) == 1
        assert pool.stats().queries == len(queries)

    def test_pooled_session_matches_plain_session(self):
        transport, _, _ = serve_topology(n_replicas=0)
        pool = FrontendPool(size=2)
        pool.bind(transport, [0, 1])
        single = QueryFrontend(site_id=-9)
        single.bind(transport, [0, 1])
        pooled, plain = pool.session("audit"), single.session("audit")
        tag = EPC(TagKind.ITEM, 2)
        assert pooled.containment(tag, 150) == plain.containment(tag, 150)
        assert pooled.trajectory(tag, 0, 300) == plain.trajectory(tag, 0, 300)
        assert pooled.dwell(tag, 0) == plain.dwell(tag, 0)
        assert pooled.alerts("q-test") == plain.alerts("q-test")
        assert pooled.stats().queries == 4

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            FrontendPool(size=0)


class TestTenantPolicies:
    def test_quota_rejects_past_the_tenant_cap(self):
        transport, _, _ = serve_topology(n_replicas=0)
        frontend = QueryFrontend(max_in_flight=64, site_id=-9)
        frontend.bind(transport, [0, 1])
        frontend.set_tenant_policy("batch", TenantPolicy(quota=8))
        with pytest.raises(Backpressure, match="quota"):
            frontend.execute_many(probe_queries(9), tenant="batch")
        assert frontend.stats.rejected == 9  # the whole batch, atomically
        # Within quota the same tenant is served.
        assert len(frontend.execute_many(probe_queries(8), tenant="batch")) == 8

    def test_background_priority_gets_half_the_queue(self):
        transport, _, _ = serve_topology(n_replicas=0)
        frontend = QueryFrontend(max_in_flight=8, site_id=-9)
        frontend.bind(transport, [0, 1])
        frontend.set_tenant_policy("bulk", TenantPolicy(priority=-1))
        with pytest.raises(Backpressure, match="background"):
            frontend.execute_many(probe_queries(5), tenant="bulk")
        # An anonymous (interactive) batch of the same size is admitted.
        assert len(frontend.execute_many(probe_queries(5))) == 5

    def test_policies_apply_across_a_pool(self):
        transport, _, _ = serve_topology(n_replicas=0)
        pool = FrontendPool(size=2, max_in_flight=8)
        pool.bind(transport, [0, 1])
        pool.set_tenant_policy("bulk", TenantPolicy(quota=2, priority=-1))
        queries = [
            HistoryRequest(0, "containment", EPC(TagKind.ITEM, 0), t) for t in range(3)
        ]  # one tag -> one frontend -> one quota bucket
        with pytest.raises(Backpressure):
            pool.execute_many(queries, tenant="bulk")
        assert len(pool.execute_many(queries[:2], tenant="bulk")) == 2
