"""Tests for the observation model and reading sampler."""

import numpy as np
import pytest

from repro._util.rng import spawn_rng
from repro.sim.layout import warehouse_layout
from repro.sim.readers import ObservationSampler, ReadRateModel
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import Location
from repro.sim.world import World


@pytest.fixture(scope="module")
def layout():
    return warehouse_layout(n_shelves=4)


@pytest.fixture(scope="module")
def model(layout):
    return ReadRateModel.build(layout, main_rate=0.8, overlap_rate=0.5, seed=5)


class TestReadRateModel:
    def test_diagonal_is_main_rate(self, model):
        np.testing.assert_allclose(np.diagonal(model.pi), 0.8)

    def test_overlap_is_symmetric(self, layout, model):
        for a, b in layout.adjacent_pairs:
            assert model.pi[a, b] == model.pi[b, a] == 0.5

    def test_far_pairs_are_epsilon(self, layout, model):
        entry, exit_ = layout.entry, layout.exit
        assert model.pi[entry, exit_] == pytest.approx(model.epsilon)

    def test_sampled_rates_stay_in_range(self, layout):
        ranged = ReadRateModel.build(
            layout, main_rate=(0.6, 1.0), overlap_rate=(0.2, 0.8), seed=9
        )
        diag = np.diagonal(ranged.pi)
        assert ((diag >= 0.6) & (diag <= 1.0)).all()

    def test_away_column_exists(self, layout, model):
        assert model.n_states == layout.n_locations + 1
        assert model.log_pi.shape == (layout.n_locations, model.n_states)
        # A reading is (almost) impossible for an away tag.
        assert np.exp(model.log_pi[0, model.away_index]) == pytest.approx(
            model.epsilon
        )

    def test_base_vector_matches_manual_sum(self, layout, model):
        key = 0  # all readers active (shelves synchronized at phase 0)
        base = model.base_vector(key)
        manual = sum(
            model.log_miss[r] for r in layout.active_readers(key)
        )
        np.testing.assert_allclose(base, manual)

    def test_base_matrix_rows_match_keys(self, model):
        epochs = np.array([0, 1, 10, 11])
        matrix = model.base_matrix(epochs)
        np.testing.assert_allclose(matrix[0], matrix[2])
        np.testing.assert_allclose(matrix[1], matrix[3])

    def test_rejects_bad_shapes_and_rates(self, layout):
        with pytest.raises(ValueError):
            ReadRateModel(layout, np.full((2, 2), 0.5))
        bad = np.full((layout.n_locations, layout.n_locations), 0.5)
        bad[0, 0] = 1.0
        with pytest.raises(ValueError):
            ReadRateModel(layout, bad)


class TestObservationSampler:
    def test_read_rate_statistics(self, layout):
        """Sampled readings hit the main read rate within tolerance."""
        model = ReadRateModel.build(layout, main_rate=0.7, overlap_rate=0.5, seed=2)
        world = World()
        tag = EPC(TagKind.CASE, 0)
        world.register(tag, 0, location=Location(0, layout.entry))
        horizon = 4000
        world.truth.horizon = horizon
        trace = ObservationSampler(seed=3).sample_site(
            world.truth, 0, layout, model, horizon
        )
        hits = [r for r in trace.readings if r.reader == layout.entry]
        rate = len(hits) / horizon
        assert rate == pytest.approx(0.7, abs=0.03)

    def test_no_readings_when_away(self, layout, model):
        world = World()
        tag = EPC(TagKind.CASE, 1)
        world.register(tag, 0)  # registered AWAY, never placed
        world.truth.horizon = 500
        trace = ObservationSampler(seed=4).sample_site(
            world.truth, 0, layout, model, 500
        )
        assert len(trace) == 0

    def test_shelf_reader_respects_schedule(self, layout, model):
        world = World()
        tag = EPC(TagKind.CASE, 2)
        shelf = layout.shelf_indices[0]
        world.register(tag, 0, location=Location(0, shelf))
        world.truth.horizon = 1000
        trace = ObservationSampler(seed=5).sample_site(
            world.truth, 0, layout, model, 1000
        )
        for reading in trace.readings:
            spec = layout.specs[reading.reader]
            assert spec.is_active(reading.time)

    def test_deterministic_given_seed(self, layout, model):
        world = World()
        tag = EPC(TagKind.CASE, 3)
        world.register(tag, 0, location=Location(0, layout.entry))
        world.truth.horizon = 300
        t1 = ObservationSampler(seed=8).sample_site(world.truth, 0, layout, model, 300)
        t2 = ObservationSampler(seed=8).sample_site(world.truth, 0, layout, model, 300)
        assert t1.readings == t2.readings
