"""Query-serving frontend: scatter-gather, caching, admission, retry.

Runs a two-site cold chain once (module fixture) and serves historical
queries against it over several transports, checking that federated
answers agree with direct per-site :class:`HistoryService` reads, that
the epoch-tagged cache hits and invalidates, and that the at-least-once
retry loop survives a transport that drops serving traffic.
"""

import pytest

from repro.core.service import ServiceConfig
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import Cluster, InProcessTransport, ThreadedTransport
from repro.runtime.envelope import HISTORY_REQUEST, Envelope
from repro.serving import (
    Backpressure,
    HistoryRequest,
    QueryFrontend,
    ServingSession,
)
from repro.sim.tags import EPC, TagKind
from repro.workloads.scenarios import cold_chain_scenario

CONFIG = ServiceConfig(
    run_interval=300,
    recent_history=600,
    truncation="cr",
    emit_events=True,
    event_period=5,
)


def make_scenario():
    return cold_chain_scenario(
        seed=29,
        n_sites=2,
        n_freezer_cases=4,
        n_room_cases=2,
        items_per_case=4,
        n_exposures=2,
        horizon=1200,
        site_leave_time=600,
    )


def run_served(scenario, transport=None, frontend=None):
    cluster = Cluster(scenario.traces, CONFIG, transport=transport)
    cluster.add_query(
        "q2",
        lambda site: TemperatureExposureQuery(scenario.catalog, exposure_duration=400),
    )
    cluster.set_sensor_streams(
        {site: scenario.sensor_stream(site) for site in range(len(scenario.traces))}
    )
    frontend = frontend if frontend is not None else QueryFrontend()
    cluster.attach_frontend(frontend)
    cluster.run(scenario.horizon)
    return cluster, frontend


@pytest.fixture(scope="module")
def scenario():
    return make_scenario()


@pytest.fixture(scope="module")
def served(scenario):
    cluster, frontend = run_served(scenario)
    yield cluster, frontend
    cluster.close()


def probe_tags(scenario):
    return sorted(scenario.catalog.frozen_items)[:4] + [EPC(TagKind.CASE, 0)]


class TestScatterGather:
    def test_point_answers_pick_the_freshest_site(self, scenario, served):
        cluster, frontend = served
        session = frontend.session("audit")
        for tag in probe_tags(scenario):
            for time in (300, 600, 900, 1199):
                result = session.containment(tag, time)
                answers = {
                    node.site: node.history.point_containment(tag, time)
                    for node in cluster.nodes
                }
                with_rows = {s: a for s, a in answers.items() if a.rows}
                if not with_rows:
                    assert result.rows == ()
                    continue
                freshest = max(with_rows, key=lambda s: (with_rows[s].last_update, -s))
                assert result.site == freshest
                assert result.rows == with_rows[freshest].rows

    def test_migrated_tag_answers_from_destination(self, scenario, served):
        _, frontend = served
        session = frontend.session()
        case = EPC(TagKind.CASE, 0)
        item = probe_tags(scenario)[0]
        assert session.location(case, 1199).site == 1
        assert session.location(case, 300).site == 0
        assert session.containment(item, 1199).site == 1

    def test_range_answers_pool_every_site(self, scenario, served):
        cluster, frontend = served
        session = frontend.session()
        case = EPC(TagKind.CASE, 0)
        result = session.trajectory(case, 0, 1200)
        expected = sorted(
            (
                (node.site,) + row
                for node in cluster.nodes
                for row in node.history.trajectory(case, 0, 1200).rows
            ),
            key=lambda row: (row[1], row[0], row[2], row[3]),
        )
        assert list(result.rows) == expected
        sites = {row[0] for row in result.rows}
        assert sites == {0, 1}

    def test_dwell_and_provenance_and_alerts(self, scenario, served):
        _, frontend = served
        session = frontend.session()
        item = probe_tags(scenario)[0]
        dwell = session.dwell(item, 0, 1200)
        assert all(epochs > 0 for _, _, epochs in dwell.rows)
        provenance = session.provenance(item, 900)
        assert provenance.rows  # the item sits inside some case
        alerts = session.alerts("q2")
        assert all(row[1] == "q2" for row in alerts.rows)

    def test_unknown_tag_is_empty_not_an_error(self, served):
        _, frontend = served
        session = frontend.session()
        ghost = EPC(TagKind.ITEM, 999999)
        assert session.containment(ghost, 600).rows == ()
        assert session.trajectory(ghost, 0, 1200).rows == ()


class TestCache:
    def test_repeat_query_hits_and_append_invalidates(self, scenario, served):
        cluster, frontend = served
        session = frontend.session()
        tag = probe_tags(scenario)[1]
        before = frontend.stats.cache_hits
        first = session.containment(tag, 750)
        again = session.containment(tag, 750)
        assert again == first
        assert frontend.stats.cache_hits == before + 1
        remote_before = frontend.stats.remote_requests
        # A new append bumps the epoch vector: the entry is stale.
        frontend.note_append(0, cluster.nodes[0].archive.last_boundary + 300)
        refreshed = session.containment(tag, 750)
        assert refreshed == first  # nothing actually changed on disk
        assert frontend.stats.remote_requests > remote_before

    def test_cache_capacity_is_bounded(self, scenario, served):
        _, frontend = served
        assert len(frontend._cache) <= frontend.cache_capacity


class TestThreadedTransportEquivalence:
    def test_answers_match_in_process(self, scenario, served):
        _, in_process_frontend = served
        cluster, frontend = run_served(scenario, transport=ThreadedTransport())
        try:
            baseline_session = in_process_frontend.session()
            session = frontend.session()
            for tag in probe_tags(scenario):
                for time in (300, 900, 1199):
                    assert session.containment(tag, time) == (
                        baseline_session.containment(tag, time)
                    )
                assert session.trajectory(tag, 0, 1200) == (
                    baseline_session.trajectory(tag, 0, 1200)
                )
            assert session.alerts() == baseline_session.alerts()
        finally:
            cluster.close()


class FlakyServingTransport(InProcessTransport):
    """Reliable for cluster traffic, drops the first serving requests."""

    def __init__(self, drop_first: int) -> None:
        super().__init__()
        self.drop_first = drop_first
        self.dropped = 0

    def send(self, env: Envelope) -> None:
        if env.kind == HISTORY_REQUEST and self.dropped < self.drop_first:
            self.dropped += 1
            self.ledger.send(env.src, env.dst, env.kind, env.payload)
            return  # accounted, never delivered
        super().send(env)


class TestAtLeastOnce:
    def test_frontend_retries_until_answered(self, scenario):
        transport = FlakyServingTransport(drop_first=3)
        cluster, frontend = run_served(scenario, transport=transport)
        try:
            session = frontend.session()
            tag = probe_tags(scenario)[0]
            result = session.containment(tag, 900)
            assert result.rows  # answered despite the drops
            assert transport.dropped == 3
            assert frontend.stats.retransmits >= 3
        finally:
            cluster.close()

    def test_gather_gives_up_after_round_limit(self, scenario):
        class BlackHole(InProcessTransport):
            def send(self, env: Envelope) -> None:
                if env.kind == HISTORY_REQUEST:
                    self.ledger.send(env.src, env.dst, env.kind, env.payload)
                    return
                super().send(env)

        cluster, frontend = run_served(scenario, transport=BlackHole())
        try:
            frontend.MAX_ROUNDS = 3
            with pytest.raises(RuntimeError, match="no response"):
                frontend.session().containment(probe_tags(scenario)[0], 600)
        finally:
            cluster.close()


class TestAdmissionControl:
    def test_submit_beyond_limit_raises_backpressure(self, scenario, served):
        cluster, frontend = served
        small = QueryFrontend(max_in_flight=2, site_id=-4)
        small.bind(cluster.transport, [node.site for node in cluster.nodes])
        session = small.session("burst")
        tag = probe_tags(scenario)[0]
        session.submit(HistoryRequest(0, "containment", tag, 300))
        session.submit(HistoryRequest(0, "containment", tag, 600))
        with pytest.raises(Backpressure):
            session.submit(HistoryRequest(0, "containment", tag, 900))
        assert small.stats.rejected == 1
        assert session.stats.rejected == 1
        results = session.gather()
        assert len(results) == 2 and all(r.rows for r in results)

    def test_session_stats_track_queries(self, scenario, served):
        _, frontend = served
        session = frontend.session("tenant-a")
        assert isinstance(session, ServingSession)
        tag = probe_tags(scenario)[2]
        session.containment(tag, 600)
        session.containment(tag, 600)
        assert session.stats.queries == 2
        assert session.stats.cache_hits >= 1


class TestFrontendGuards:
    def test_unbound_frontend_refuses_queries(self):
        frontend = QueryFrontend()
        with pytest.raises(RuntimeError, match="not bound"):
            frontend.session().containment(EPC(TagKind.ITEM, 1), 0)

    def test_frontend_rejects_foreign_envelope_kinds(self, served):
        _, frontend = served
        with pytest.raises(ValueError, match="cannot handle"):
            frontend.handle(Envelope(0, -3, "inference-state", b"", 0))

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            QueryFrontend(max_in_flight=0)
