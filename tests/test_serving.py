"""Query-serving frontend: scatter-gather, caching, admission, retry.

Runs a two-site cold chain once (module fixture) and serves historical
queries against it over several transports, checking that federated
answers agree with direct per-site :class:`HistoryService` reads, that
the epoch-tagged cache hits and invalidates, and that the at-least-once
retry loop survives a transport that drops serving traffic.
"""

import threading

import pytest

from repro.archive import SiteArchive
from repro.core.service import ServiceConfig
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import Cluster, InProcessTransport, ThreadedTransport
from repro.runtime.envelope import HISTORY_REQUEST, HISTORY_RESPONSE, Envelope
from repro.serving import (
    ArchivePublisher,
    ArchiveReplica,
    Backpressure,
    HistoryRequest,
    QueryFrontend,
    ServingSession,
    replica_site_id,
)
from repro.serving.history import HistoryService
from repro.sim.tags import EPC, TagKind
from repro.workloads.scenarios import cold_chain_scenario

CONFIG = ServiceConfig(
    run_interval=300,
    recent_history=600,
    truncation="cr",
    emit_events=True,
    event_period=5,
)


def make_scenario():
    return cold_chain_scenario(
        seed=29,
        n_sites=2,
        n_freezer_cases=4,
        n_room_cases=2,
        items_per_case=4,
        n_exposures=2,
        horizon=1200,
        site_leave_time=600,
    )


def run_served(scenario, transport=None, frontend=None):
    cluster = Cluster(scenario.traces, CONFIG, transport=transport)
    cluster.add_query(
        "q2",
        lambda site: TemperatureExposureQuery(scenario.catalog, exposure_duration=400),
    )
    cluster.set_sensor_streams(
        {site: scenario.sensor_stream(site) for site in range(len(scenario.traces))}
    )
    frontend = frontend if frontend is not None else QueryFrontend()
    cluster.attach_frontend(frontend)
    cluster.run(scenario.horizon)
    return cluster, frontend


@pytest.fixture(scope="module")
def scenario():
    return make_scenario()


@pytest.fixture(scope="module")
def served(scenario):
    cluster, frontend = run_served(scenario)
    yield cluster, frontend
    cluster.close()


def probe_tags(scenario):
    return sorted(scenario.catalog.frozen_items)[:4] + [EPC(TagKind.CASE, 0)]


class TestScatterGather:
    def test_point_answers_pick_the_freshest_site(self, scenario, served):
        cluster, frontend = served
        session = frontend.session("audit")
        for tag in probe_tags(scenario):
            for time in (300, 600, 900, 1199):
                result = session.containment(tag, time)
                answers = {
                    node.site: node.history.point_containment(tag, time)
                    for node in cluster.nodes
                }
                with_rows = {s: a for s, a in answers.items() if a.rows}
                if not with_rows:
                    assert result.rows == ()
                    continue
                freshest = max(with_rows, key=lambda s: (with_rows[s].last_update, -s))
                assert result.site == freshest
                assert result.rows == with_rows[freshest].rows

    def test_migrated_tag_answers_from_destination(self, scenario, served):
        _, frontend = served
        session = frontend.session()
        case = EPC(TagKind.CASE, 0)
        item = probe_tags(scenario)[0]
        assert session.location(case, 1199).site == 1
        assert session.location(case, 300).site == 0
        assert session.containment(item, 1199).site == 1

    def test_range_answers_pool_every_site(self, scenario, served):
        cluster, frontend = served
        session = frontend.session()
        case = EPC(TagKind.CASE, 0)
        result = session.trajectory(case, 0, 1200)
        expected = sorted(
            (
                (node.site,) + row
                for node in cluster.nodes
                for row in node.history.trajectory(case, 0, 1200).rows
            ),
            key=lambda row: (row[1], row[0], row[2], row[3]),
        )
        assert list(result.rows) == expected
        sites = {row[0] for row in result.rows}
        assert sites == {0, 1}

    def test_dwell_and_provenance_and_alerts(self, scenario, served):
        _, frontend = served
        session = frontend.session()
        item = probe_tags(scenario)[0]
        dwell = session.dwell(item, 0, 1200)
        assert all(epochs > 0 for _, _, epochs in dwell.rows)
        provenance = session.provenance(item, 900)
        assert provenance.rows  # the item sits inside some case
        alerts = session.alerts("q2")
        assert all(row[1] == "q2" for row in alerts.rows)

    def test_unknown_tag_is_empty_not_an_error(self, served):
        _, frontend = served
        session = frontend.session()
        ghost = EPC(TagKind.ITEM, 999999)
        assert session.containment(ghost, 600).rows == ()
        assert session.trajectory(ghost, 0, 1200).rows == ()


class TestCache:
    def test_repeat_query_hits_and_append_invalidates(self, scenario, served):
        cluster, _ = served
        # A dedicated frontend: the synthetic note_append below announces
        # a boundary that never materializes, which (correctly) keeps
        # every later fill born-stale — that must not leak into the
        # shared fixture's frontend.
        frontend = QueryFrontend(site_id=-5)
        frontend.bind(cluster.transport, [node.site for node in cluster.nodes])
        for node in cluster.nodes:
            frontend.note_append(node.site, node.archive.last_boundary)
        session = frontend.session()
        tag = probe_tags(scenario)[1]
        before = frontend.stats.cache_hits
        first = session.containment(tag, 750)
        again = session.containment(tag, 750)
        assert again == first
        assert frontend.stats.cache_hits == before + 1
        remote_before = frontend.stats.remote_requests
        # A new append bumps the epoch vector: the entry is stale.
        frontend.note_append(0, cluster.nodes[0].archive.last_boundary + 300)
        refreshed = session.containment(tag, 750)
        assert refreshed == first  # nothing actually changed on disk
        assert frontend.stats.remote_requests > remote_before

    def test_cache_capacity_is_bounded(self, scenario, served):
        _, frontend = served
        assert len(frontend._cache) <= frontend.cache_capacity


class TestThreadedTransportEquivalence:
    def test_answers_match_in_process(self, scenario, served):
        _, in_process_frontend = served
        cluster, frontend = run_served(scenario, transport=ThreadedTransport())
        try:
            baseline_session = in_process_frontend.session()
            session = frontend.session()
            for tag in probe_tags(scenario):
                for time in (300, 900, 1199):
                    assert session.containment(tag, time) == (
                        baseline_session.containment(tag, time)
                    )
                assert session.trajectory(tag, 0, 1200) == (
                    baseline_session.trajectory(tag, 0, 1200)
                )
            assert session.alerts() == baseline_session.alerts()
        finally:
            cluster.close()


class FlakyServingTransport(InProcessTransport):
    """Reliable for cluster traffic, drops the first serving requests."""

    def __init__(self, drop_first: int) -> None:
        super().__init__()
        self.drop_first = drop_first
        self.dropped = 0

    def send(self, env: Envelope) -> None:
        if env.kind == HISTORY_REQUEST and self.dropped < self.drop_first:
            self.dropped += 1
            self.ledger.send(env.src, env.dst, env.kind, env.payload)
            return  # accounted, never delivered
        super().send(env)


class TestAtLeastOnce:
    def test_frontend_retries_until_answered(self, scenario):
        transport = FlakyServingTransport(drop_first=3)
        cluster, frontend = run_served(scenario, transport=transport)
        try:
            session = frontend.session()
            tag = probe_tags(scenario)[0]
            result = session.containment(tag, 900)
            assert result.rows  # answered despite the drops
            assert transport.dropped == 3
            assert frontend.stats.retransmits >= 3
        finally:
            cluster.close()

    def test_dead_site_backoff_caps_retransmit_rate(self, scenario):
        """Regression: a dead site used to draw one retransmit per
        gather round — a hot loop for the whole MAX_ROUNDS budget. The
        capped exponential backoff makes that O(log rounds), surfaced
        via the ledger's frontend_retransmits gauge."""

        class DeadSite(InProcessTransport):
            def send(self, env: Envelope) -> None:
                if env.kind == HISTORY_REQUEST and env.dst == 1:
                    self.ledger.send(env.src, env.dst, env.kind, env.payload)
                    return  # site 1 never answers
                super().send(env)

        transport = DeadSite()
        cluster, frontend = run_served(scenario, transport=transport)
        try:
            frontend.MAX_ROUNDS = 40
            with pytest.raises(RuntimeError, match="missing responses"):
                frontend.session().containment(probe_tags(scenario)[0], 600)
            # Retransmits at rounds 0, 1, 3, 7, 15, 31 — six, not forty.
            assert frontend.stats.retransmits == 6
            assert transport.ledger.frontend_retransmits == 6
        finally:
            cluster.close()

    def test_gather_gives_up_after_round_limit(self, scenario):
        class BlackHole(InProcessTransport):
            def send(self, env: Envelope) -> None:
                if env.kind == HISTORY_REQUEST:
                    self.ledger.send(env.src, env.dst, env.kind, env.payload)
                    return
                super().send(env)

        cluster, frontend = run_served(scenario, transport=BlackHole())
        try:
            frontend.MAX_ROUNDS = 3
            with pytest.raises(RuntimeError, match="missing responses"):
                frontend.session().containment(probe_tags(scenario)[0], 600)
        finally:
            cluster.close()


class TestAdmissionControl:
    def test_submit_beyond_limit_raises_backpressure(self, scenario, served):
        cluster, frontend = served
        small = QueryFrontend(max_in_flight=2, site_id=-4)
        small.bind(cluster.transport, [node.site for node in cluster.nodes])
        session = small.session("burst")
        tag = probe_tags(scenario)[0]
        session.submit(HistoryRequest(0, "containment", tag, 300))
        session.submit(HistoryRequest(0, "containment", tag, 600))
        queries_before = small.stats.queries
        with pytest.raises(Backpressure):
            session.submit(HistoryRequest(0, "containment", tag, 900))
        assert small.stats.rejected == 1
        assert session.stats.rejected == 1
        # A rejected submission still counts as a query at BOTH levels,
        # so frontend- and session-level rejection rates agree.
        assert small.stats.queries == queries_before + 1
        assert session.stats.queries == 1
        results = session.gather()
        assert len(results) == 2 and all(r.rows for r in results)
        assert session.stats.queries == 3
        assert small.stats.queries == queries_before + 3

    def test_session_stats_track_queries(self, scenario, served):
        _, frontend = served
        session = frontend.session("tenant-a")
        assert isinstance(session, ServingSession)
        tag = probe_tags(scenario)[2]
        session.containment(tag, 600)
        session.containment(tag, 600)
        assert session.stats.queries == 2
        assert session.stats.cache_hits >= 1


class TestFrontendGuards:
    def test_unbound_frontend_refuses_queries(self):
        frontend = QueryFrontend()
        with pytest.raises(RuntimeError, match="not bound"):
            frontend.session().containment(EPC(TagKind.ITEM, 1), 0)

    def test_foreign_envelope_kinds_are_dropped_not_raised(self, scenario, served):
        """A misrouted envelope must not kill an unrelated gather."""
        _, frontend = served
        before = frontend.stats.dropped
        frontend.handle(Envelope(0, -3, "inference-state", b"", 0))
        frontend.handle(Envelope(0, -3, HISTORY_REQUEST, b"", 0))
        frontend.handle(Envelope(0, -3, HISTORY_RESPONSE, b"\xff\xff\xff\xff", 0))
        assert frontend.stats.dropped == before + 3
        # The frontend still serves queries afterwards.
        result = frontend.session().containment(probe_tags(scenario)[0], 900)
        assert result.rows

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            QueryFrontend(max_in_flight=0)


def boundary_archive():
    """An archive whose interesting rows sit exactly on the boundary.

    The last boundary is 600; a location interval *opens* there, one
    alert *starts* there, and another alert *ends* just before a probe
    point — the cases where the three range queries used to disagree.
    """
    archive = SiteArchive(0, seal_every=4)
    tag = EPC(TagKind.ITEM, 1)
    tid = archive.intern_tag(tag)
    archive.location.observe(tid, 0, ((7, 1.0),))
    archive.location.observe(tid, 600, ((8, 1.0),))  # seals [0,600)@7, opens @8
    name_id = archive.intern_key("q")
    archive.alerts.append(name_id, archive.intern_key("at-boundary"), 600, 605, (1.0,))
    archive.alerts.append(name_id, archive.intern_key("early"), 100, 200, (2.0,))
    archive.last_boundary = 600
    return archive, tag


class TestRangeBoundarySemantics:
    """Regression pins for the unified half-open ``[lo, hi)`` contract.

    ``hi == -1`` means ``last_boundary + 1`` for trajectory, dwell, AND
    alerts — dwell used to clip one epoch short (an interval opening at
    the last boundary dwelt zero epochs) and alerts used to filter
    inclusively (a row starting exactly at ``hi`` leaked in).
    """

    def test_open_range_equals_explicit_boundary_plus_one(self):
        archive, tag = boundary_archive()
        service = HistoryService(archive)
        hi = archive.last_boundary + 1
        assert service.trajectory(tag, 0, -1) == service.trajectory(tag, 0, hi)
        assert service.dwell(tag, 0, -1) == service.dwell(tag, 0, hi)
        assert service.alerts("q", 0, -1) == service.alerts("q", 0, hi)

    def test_interval_opening_at_last_boundary_dwells_one_epoch(self):
        archive, tag = boundary_archive()
        service = HistoryService(archive)
        dwell = dict(service.dwell(tag, 0, -1).rows)
        assert dwell == {7: 600, 8: 1}  # place 8 no longer vanishes
        trajectory = service.trajectory(tag, 0, -1).rows
        assert (600, -1, 8) in trajectory

    def test_alert_starting_at_hi_is_excluded(self):
        archive, tag = boundary_archive()
        service = HistoryService(archive)
        keys = lambda answer: [row[1] for row in answer.rows]
        # Half-open upper bound: start == hi is out, start == hi-1 is in.
        assert keys(service.alerts("q", 0, 600)) == ["early"]
        assert keys(service.alerts("q", 0, 601)) == ["at-boundary", "early"]
        # Overlap lower bound: an alert is in while it still touches lo.
        assert keys(service.alerts("q", 605, -1)) == ["at-boundary"]
        assert keys(service.alerts("q", 606, -1)) == []

    def test_dwell_clips_open_interval_to_explicit_hi(self):
        archive, tag = boundary_archive()
        service = HistoryService(archive)
        assert dict(service.dwell(tag, 590, 600).rows) == {7: 10}
        assert dict(service.dwell(tag, 590, 601).rows) == {7: 10, 8: 1}


def synthetic_federation(transport=None):
    """Two tiny synthetic archives behind publishers — fast fixtures for
    cache-behaviour tests that need precise control over boundaries."""
    from tests.test_replication import build_archive

    transport = transport if transport is not None else InProcessTransport()
    archives = [build_archive(site=s) for s in range(2)]
    for archive in archives:
        ArchivePublisher(archive).bind(transport)
    return transport, archives


class AppendMidGather(InProcessTransport):
    """Delivers an epoch bump to the frontend while a gather is in flight."""

    def __init__(self):
        super().__init__()
        self.bump = None  # (frontend, site, boundary)

    def send(self, env):
        if self.bump is not None and env.kind == HISTORY_REQUEST:
            frontend, site, boundary = self.bump
            self.bump = None
            frontend.note_append(site, boundary)
        super().send(env)


class TestCacheStaleness:
    def test_entry_born_stale_is_never_served(self):
        transport, archives = synthetic_federation(AppendMidGather())
        frontend = QueryFrontend(site_id=-9)
        frontend.bind(transport, [0, 1])
        for archive in archives:
            frontend.note_append(archive.site, archive.last_boundary)
        tag = EPC(TagKind.ITEM, 0)
        session = frontend.session()
        # The append lands between admission and the responses: the
        # filled entry is tagged with the pre-append vector, so it is
        # stale the moment it is born.
        transport.bump = (frontend, 0, archives[0].last_boundary + 300)
        session.containment(tag, 150)
        remote_before = frontend.stats.remote_requests
        hits_before = frontend.stats.cache_hits
        session.containment(tag, 150)  # must refetch, not hit
        assert frontend.stats.remote_requests > remote_before
        assert frontend.stats.cache_hits == hits_before

    def test_lagging_replica_cannot_mask_new_rows(self):
        from tests.test_replication import grow_archive

        transport, archives = synthetic_federation()
        replica = ArchiveReplica(0, replica_site_id(0, 0, 2))
        replica.bind(transport)
        replica.catch_up()
        frontend = QueryFrontend(site_id=-9)
        frontend.bind(transport, [0, 1], replicas={0: [replica.site_id]},
                      read_preference="replica")
        # The primary moves on; the replica does NOT catch up. The
        # frontend hears about the new boundary.
        grow_archive(archives[0], 4, 2)
        for archive in archives:
            frontend.note_append(archive.site, archive.last_boundary)
        tag = EPC(TagKind.ITEM, 0)
        session = frontend.session()
        session.containment(tag, 150)  # served by the lagging replica
        remote_before = frontend.stats.remote_requests
        session.containment(tag, 150)  # entry was tagged with the lag
        assert frontend.stats.remote_requests > remote_before
        assert frontend.stats.cache_hits == 0
        # Once the replica catches up, the entry finally sticks.
        replica.catch_up()
        session.containment(tag, 150)
        assert session.containment(tag, 150).rows
        assert frontend.stats.cache_hits >= 1

    def test_replica_backed_hits_equal_primary_answers(self):
        transport, archives = synthetic_federation()
        replica = ArchiveReplica(0, replica_site_id(0, 0, 2))
        replica.bind(transport)
        replica.catch_up()
        replicated = QueryFrontend(site_id=-9)
        replicated.bind(transport, [0, 1], replicas={0: [replica.site_id]},
                        read_preference="replica")
        primary_only = QueryFrontend(site_id=-10)
        primary_only.bind(transport, [0, 1])
        for frontend in (replicated, primary_only):
            for archive in archives:
                frontend.note_append(archive.site, archive.last_boundary)
        tag = EPC(TagKind.ITEM, 2)
        request = HistoryRequest(0, "containment", tag, 250)
        cold = replicated.execute(request)
        warm = replicated.execute(request)
        assert cold == warm == primary_only.execute(request)
        assert replicated.stats.cache_hits == 1
        assert replica.stats.answered > 0


class TestConcurrentSessions:
    def test_lru_stays_bounded_under_concurrent_sessions(self):
        transport, _ = synthetic_federation()
        frontend = QueryFrontend(max_in_flight=64, cache_capacity=8, site_id=-9)
        frontend.bind(transport, [0, 1])
        errors = []

        def client(worker: int) -> None:
            session = frontend.session(f"client-{worker}")
            try:
                for i in range(40):
                    tag = EPC(TagKind.ITEM, i % 5)
                    session.containment(tag, 7 * i + worker)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(frontend._cache) <= frontend.cache_capacity
        assert frontend.stats.queries == 160
        # Eviction means older keys are gone: re-running an early query
        # misses the cache again.
        remote_before = frontend.stats.remote_requests
        frontend.session().containment(EPC(TagKind.ITEM, 0), 0)
        assert frontend.stats.remote_requests > remote_before
