"""The observability plane's load-bearing invariant: telemetry on vs
off is **bit-identical** — containment trajectories, alerts, changes,
archives, history answers, and every ledger byte (including the
retransmit/ack overhead kinds) — across the chaos seed matrix,
crash/recover, and the process-parallel transport. Tracing observes
the planes; it must never participate in them.

Also the ``WorkerDied`` black-box satellite: a worker killed
mid-barrier surfaces with its flight-recorder tail attached, bounded.

Set ``CHAOS_SEED`` (CI matrix) to verify one extra fault-plan seed.
On an invariant failure the traced run's flight recorder is dumped to
``$CHAOS_DUMP_DIR`` (default ``chaos-dumps/``) for artifact upload.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest

from chaos import assert_chaos_invariant, chaos_plan, chaos_scenario, chaos_transport, run_chaos
from repro.obs import telemetry_session
from repro.runtime import FaultyTransport, ProcessTransport, WorkerDied

CHAOS_SEEDS = (
    [int(os.environ["CHAOS_SEED"])] if os.environ.get("CHAOS_SEED") else [11, 23, 47]
)
#: same per-seed crash schedule the fault-tolerance matrix uses.
CRASHES = {seed: (seed % 2, 910 + seed % 50, 1150) for seed in CHAOS_SEEDS}


@pytest.fixture(scope="module")
def scenario():
    return chaos_scenario()


@pytest.fixture(scope="module")
def baseline(scenario):
    """The fault-free, untraced in-process reference run."""
    return run_chaos(scenario)


@contextmanager
def traced_or_dump(reason: str, capacity: int = 16384):
    """A telemetry session that dumps its flight recorder on any
    failure raised inside the block — the chaos black box CI uploads."""
    with telemetry_session(capacity=capacity) as tel:
        try:
            yield tel
        except BaseException:
            dump_dir = os.environ.get("CHAOS_DUMP_DIR", "chaos-dumps")
            os.makedirs(dump_dir, exist_ok=True)
            tel.dump(reason=reason, path=os.path.join(dump_dir, f"flight-{reason}.jsonl"))
            raise


def assert_bit_identical(off, on):
    """Telemetry-on must equal telemetry-off on *every* observable,
    including the fault-overhead ledger bytes the chaos invariant
    normally sets aside — tracing must not even change retransmits."""
    assert on.containment_error == off.containment_error
    assert on.snapshots == off.snapshots
    assert on.alerts == off.alerts
    assert on.changes == off.changes
    assert on.migrations == off.migrations
    assert on.data_bytes == off.data_bytes
    assert on.all_bytes == off.all_bytes
    assert on.overhead_bytes == off.overhead_bytes
    assert on.duplicates_dropped == off.duplicates_dropped
    assert on.archives == off.archives
    assert on.history == off.history


class TestTelemetryChaos:
    """Named for the CI chaos matrix ``-k`` filter."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_on_off_bit_identical_under_chaos_with_crash(
        self, scenario, baseline, seed
    ):
        off = run_chaos(
            scenario, transport=chaos_transport(seed), crash=CRASHES[seed]
        )
        with traced_or_dump(f"chaos-{seed}") as tel:
            faulty = chaos_transport(seed)
            on = run_chaos(scenario, transport=faulty, crash=CRASHES[seed])
            assert_bit_identical(off, on)
            # The traced run still satisfies the chaos invariant itself.
            assert_chaos_invariant(baseline, on)
            # And actually traced: spans recorded, fault injections and
            # the crash/recover transitions captured as states.
            assert tel.recorder.total_recorded > 0
            entries = tel.recorder.entries()
            names = {e.get("name") for e in entries}
            assert "site.crash" in names and "site.recover" in names
            assert any(str(e.get("name", "")).startswith("inject.") for e in entries)
            # The always-on ledger registry mirrors the injected dict
            # exactly (some seeds legitimately never draw one kind).
            assert sum(faulty.injected.values()) > 0
            for fault, n in faulty.injected.items():
                assert (
                    faulty.ledger.registry.counter("faults_injected", fault=fault).value
                    == n
                )

    def test_on_off_bit_identical_on_process_transport(self, scenario, baseline):
        """The pipe-plane telemetry delta protocol (workers drain their
        buffers to the parent at barrier quiescence) must not perturb
        the transport's command stream: the seeded chaos run over
        forked workers — with a crash and a scheduled shard move — is
        bit-identical traced vs untraced."""
        seed = CHAOS_SEEDS[0]
        site, _, _ = CRASHES[seed]

        def run():
            inner = ProcessTransport(
                n_workers=2, rebalance=False, scheduled_moves={1: (site, 1 - site)}
            )
            result = run_chaos(
                scenario,
                transport=FaultyTransport(chaos_plan(seed), inner=inner),
                crash=CRASHES[seed],
            )
            return result, inner

        off, _ = run()
        with traced_or_dump(f"process-{seed}") as tel:
            on, inner = run()
            assert_bit_identical(off, on)
            assert_chaos_invariant(baseline, on)
            assert inner.ledger.rebalances == 1
            # Worker-shipped entries arrived and are stamped with their
            # worker id — the causal record spans the fork boundary.
            workers = {e["worker"] for e in tel.recorder.entries() if "worker" in e}
            assert workers & {0, 1}
            assert tel.registry.counter("inference_runs", site=0).value > 0


def _die_transport(n_sites: int = 2):
    transport = ProcessTransport(n_workers=2)
    for site in range(n_sites):
        transport.register(site, lambda env: None)
        transport.host_site(
            site,
            {
                "attach": lambda shim: None,
                "echo": lambda *args: args,
                "die": lambda: os._exit(3),
            },
        )
    return transport


class TestWorkerDiedTail:
    def test_killed_worker_attaches_bounded_flight_tail(self, tmp_path):
        """Regression: a worker killed mid-barrier used to surface as a
        bare WorkerDied; it must now carry the dead worker's last
        flight-recorder entries (bounded at WorkerDied.TAIL)."""
        with telemetry_session(capacity=1024, dump_dir=str(tmp_path)) as tel:
            transport = _die_transport()
            try:
                transport.site_cast(0, "echo")  # fork the workers
                transport.flush()
                # Plenty of traffic so an unbounded tail would exceed TAIL.
                for _ in range(3 * WorkerDied.TAIL):
                    transport.site_cast(0, "echo")
                transport.site_cast(0, "die")
                with pytest.raises(WorkerDied, match="flight recorder") as err:
                    transport.flush()  # the barrier pump surfaces the death
            finally:
                transport.close()
            assert err.value.worker == 0
            tail = err.value.tail
            assert 0 < len(tail) <= WorkerDied.TAIL
            assert all(entry.get("worker") == 0 for entry in tail)
            # The last thing the black box saw was the fatal op.
            assert "die" in str(tail[-1].get("op", ""))
            # The parent telemetry recorded the death and dumped the box.
            names = {e.get("name") for e in tel.recorder.entries()}
            assert "worker.died" in names
            assert os.path.exists(tmp_path / "flight-worker-died-0.jsonl")

    def test_tail_attaches_without_telemetry_installed(self):
        """The transport's own black box is always on: WorkerDied
        carries a tail even when no telemetry session is active."""
        transport = _die_transport()
        try:
            transport.site_cast(0, "echo")
            transport.flush()
            transport.site_cast(0, "die")
            with pytest.raises(WorkerDied) as err:
                transport.flush()
        finally:
            transport.close()
        assert 0 < len(err.value.tail) <= WorkerDied.TAIL
        assert "flight recorder" in str(err.value)

    def test_transport_flight_ring_bounded_under_sustained_load(self):
        """The parent-side command black box must not grow without
        bound over a long run."""
        transport = _die_transport()
        capacity = transport.flight.capacity
        try:
            transport.site_cast(0, "echo")
            transport.flush()
            for _ in range(capacity + 200):
                transport.site_cast(1, "echo")
            transport.flush()
            assert len(transport.flight) == capacity
            assert transport.flight.total_recorded > capacity
        finally:
            transport.close()
