"""Tests for trace persistence (CSV readings + JSON model sidecar)."""

import numpy as np
import pytest

from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import RFInfer
from repro.sim.traceio import read_model, read_trace, write_model, write_trace


class TestTraceRoundTrip:
    def test_readings_survive(self, small_chain, tmp_path):
        trace = small_chain.trace
        write_trace(trace, tmp_path / "readings.csv", tmp_path / "model.json")
        back = read_trace(tmp_path / "readings.csv", tmp_path / "model.json")
        assert back.readings == trace.readings
        assert back.horizon == trace.horizon
        assert back.site == trace.site

    def test_model_survives(self, small_chain, tmp_path):
        trace = small_chain.trace
        write_trace(trace, tmp_path / "r.csv", tmp_path / "m.json")
        model, site, horizon = read_model(tmp_path / "m.json")
        np.testing.assert_allclose(model.pi, trace.model.pi)
        assert model.layout.n_locations == trace.layout.n_locations
        assert [s.name for s in model.layout.specs] == [
            s.name for s in trace.layout.specs
        ]
        assert model.epsilon == trace.model.epsilon

    def test_inference_identical_after_round_trip(self, small_chain, tmp_path):
        trace = small_chain.trace
        write_trace(trace, tmp_path / "r.csv", tmp_path / "m.json")
        back = read_trace(tmp_path / "r.csv", tmp_path / "m.json")
        a = RFInfer(TraceWindow.from_range(trace, 0, 500)).run()
        b = RFInfer(TraceWindow.from_range(back, 0, 500)).run()
        assert a.containment == b.containment

    def test_bad_header_rejected(self, tmp_path):
        (tmp_path / "bad.csv").write_text("a,b,c\n1,2,3\n")
        write_model(
            __import__("repro.sim.readers", fromlist=["ReadRateModel"]).ReadRateModel.build(
                __import__("repro.sim.layout", fromlist=["warehouse_layout"]).warehouse_layout()
            ),
            tmp_path / "m.json",
        )
        with pytest.raises(ValueError):
            read_trace(tmp_path / "bad.csv", tmp_path / "m.json")

    def test_horizon_inferred_when_missing(self, small_chain, tmp_path):
        trace = small_chain.trace
        write_trace(trace, tmp_path / "r.csv", tmp_path / "m.json")
        import json

        payload = json.loads((tmp_path / "m.json").read_text())
        payload["horizon"] = None
        (tmp_path / "m.json").write_text(json.dumps(payload))
        back = read_trace(tmp_path / "r.csv", tmp_path / "m.json")
        assert back.horizon == trace.readings[-1].time + 1
