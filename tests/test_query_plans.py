"""Equivalence suite: compiled plans vs the hand-written query paths.

The declarative refactor's headline guarantee: compiling Q1/Q2/tracking
from specs changes *nothing observable*. Alerts, per-object migrated
state bytes, and checkpoint payloads are bit-identical to the original
hand-written implementations (kept in :mod:`repro.queries.legacy` as
reference oracles) — standalone over ground-truth and inferred streams,
and end-to-end through a federated run including a chaos-seed fault
plan. On top of that, the suite pins the multi-query optimizer's
sharing counts, exercises the two new declarative monitors, and
property-tests the generic plan-state codecs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import ObjectEvent, events_from_truth
from repro.core.service import ServiceConfig, StreamingInference
from repro.queries.compiler import QueryEngine, RouteAutomaton
from repro.queries.legacy import (
    LegacyFreezerExposureQuery,
    LegacyPathDeviationQuery,
    LegacyTemperatureExposureQuery,
)
from repro.queries.q1 import SENSOR_CODEC, FreezerExposureQuery
from repro.queries.q2 import TemperatureExposureQuery
from repro.queries.spec import RouteConformance, Stream
from repro.queries.tracking import PathDeviationQuery
from repro.runtime import Cluster
from repro.sim.sensors import SensorReading
from repro.sim.tags import EPC, TagKind
from repro.streams.engine import StreamScheduler
from repro.workloads.catalog import ProductCatalog
from repro.workloads.monitors import (
    ColocationBreachQuery,
    DwellTimeQuery,
    dwell_time_spec,
)
from repro.workloads.scenarios import cold_chain_scenario

from chaos import CHAOS_CONFIG, chaos_scenario, chaos_transport

# -- scenario matrix -------------------------------------------------------

#: three standalone scenarios: (seed, read_rate, q1_duration, q2_duration).
SCENARIOS = [
    (4, 0.8, 300, 400),
    (23, 0.7, 250, 350),
    (51, 0.9, 300, 400),
]


@pytest.fixture(scope="module", params=SCENARIOS, ids=lambda p: f"seed{p[0]}")
def scenario_cell(request):
    seed, read_rate, q1_dur, q2_dur = request.param
    scenario = cold_chain_scenario(seed=seed, read_rate=read_rate)
    events = events_from_truth(scenario.truth, scenario.horizon, period=5)
    return scenario, events, q1_dur, q2_dur


def drive(query, events, sensors):
    scheduler = StreamScheduler()
    scheduler.route(ObjectEvent, query.on_event)
    scheduler.route(SensorReading, query.on_sensor)
    scheduler.run(events, sensors)
    return query


def assert_query_equivalent(compiled, legacy, tags):
    """Alerts, migrated bytes, and checkpoint payloads all match."""
    assert compiled.alerts == legacy.alerts
    assert compiled.alert_pairs() == legacy.alert_pairs()
    for tag in sorted(tags):
        assert compiled.export_state(tag) == legacy.export_state(tag)
    assert compiled.snapshot_state() == legacy.snapshot_state()


class TestCompiledVsLegacyExposure:
    """Q1/Q2 compiled plans against the hand-written oracles."""

    def test_q1_bit_identical(self, scenario_cell):
        scenario, events, q1_dur, _ = scenario_cell
        sensors = scenario.sensor_stream(0)
        compiled = drive(
            FreezerExposureQuery(scenario.catalog, exposure_duration=q1_dur),
            events, sensors,
        )
        legacy = drive(
            LegacyFreezerExposureQuery(scenario.catalog, exposure_duration=q1_dur),
            events, sensors,
        )
        assert compiled.alerts  # non-vacuous: the scenario produces exposures
        assert_query_equivalent(compiled, legacy, scenario.catalog.frozen_items)

    def test_q2_bit_identical(self, scenario_cell):
        scenario, events, _, q2_dur = scenario_cell
        sensors = scenario.sensor_stream(0)
        compiled = drive(
            TemperatureExposureQuery(scenario.catalog, exposure_duration=q2_dur),
            events, sensors,
        )
        legacy = drive(
            LegacyTemperatureExposureQuery(
                scenario.catalog, exposure_duration=q2_dur
            ),
            events, sensors,
        )
        assert compiled.alerts
        assert_query_equivalent(compiled, legacy, scenario.catalog.frozen_items)

    def test_q1_bit_identical_on_inferred_stream(self):
        """Same guarantee over the inference-produced event stream."""
        scenario = cold_chain_scenario(seed=4)
        service = StreamingInference(
            scenario.trace,
            ServiceConfig(
                run_interval=300, recent_history=600, truncation="cr",
                emit_events=True, event_period=5,
            ),
        )
        service.run_until(scenario.horizon)
        events = sorted(service.events, key=lambda e: e.time)
        sensors = scenario.sensor_stream(0)
        compiled = drive(FreezerExposureQuery(scenario.catalog), events, sensors)
        legacy = drive(
            LegacyFreezerExposureQuery(scenario.catalog), events, sensors
        )
        assert_query_equivalent(compiled, legacy, scenario.catalog.frozen_items)

    def test_cross_restore(self, scenario_cell):
        """A compiled plan restores a legacy checkpoint and vice versa —
        the byte formats are one and the same."""
        scenario, events, q1_dur, _ = scenario_cell
        sensors = scenario.sensor_stream(0)
        legacy = drive(
            LegacyFreezerExposureQuery(scenario.catalog, exposure_duration=q1_dur),
            events, sensors,
        )
        compiled = FreezerExposureQuery(scenario.catalog, exposure_duration=q1_dur)
        compiled.restore_state(legacy.snapshot_state())
        assert compiled.pattern.states == legacy.pattern.states
        assert compiled.alerts == legacy.alerts
        assert compiled.temperature.table == legacy.temperature.table
        fresh_legacy = LegacyFreezerExposureQuery(
            scenario.catalog, exposure_duration=q1_dur
        )
        fresh_legacy.restore_state(compiled.snapshot_state())
        assert fresh_legacy.snapshot_state() == compiled.snapshot_state()


class TestCompiledVsLegacyTracking:
    def routes_for(self, scenario):
        cases = sorted(
            tag for tag in scenario.truth.tags() if tag.kind is TagKind.CASE
        )
        # Declare half the cases cleared for site 0 only: with 2 sites
        # every case travels 0 → 1, so the others deviate.
        return {
            case: (0, 1) if case.serial % 2 == 0 else (0,) for case in cases
        }

    def test_tracking_bit_identical(self):
        scenario = cold_chain_scenario(seed=7, n_sites=2, horizon=1500,
                                       site_leave_time=700)
        events = events_from_truth(scenario.truth, scenario.horizon, period=5)
        routes = self.routes_for(scenario)
        compiled = PathDeviationQuery(routes)
        legacy = LegacyPathDeviationQuery(routes)
        for event in events:
            compiled.on_event(event)
            legacy.on_event(event)
        assert compiled.alerts  # odd-serial cases do deviate
        assert [tuple(a) for a in compiled.alerts] == [
            tuple(a) for a in legacy.alerts
        ]
        for tag in sorted(routes):
            assert compiled.export_state(tag) == legacy.export_state(tag)
            assert compiled.path_of(tag) == legacy.path_of(tag)
        assert compiled.snapshot_state() == legacy.snapshot_state()

    def test_tracking_import_merge_matches_legacy(self):
        """Split the stream at a hand-off point: state exported from the
        first half merges into an instance that saw the second half."""
        scenario = cold_chain_scenario(seed=7, n_sites=2, horizon=1500,
                                       site_leave_time=700)
        events = events_from_truth(scenario.truth, scenario.horizon, period=5)
        routes = self.routes_for(scenario)
        cut = scenario.horizon // 2

        def split_run(factory):
            first, second = factory(routes), factory(routes)
            for event in events:
                (first if event.time < cut else second).on_event(event)
            for tag in sorted(routes):
                state = first.export_state(tag)
                if state is not None:
                    second.import_state(tag, state)
            return second

        compiled = split_run(PathDeviationQuery)
        legacy = split_run(LegacyPathDeviationQuery)
        for tag in sorted(routes):
            assert compiled.export_state(tag) == legacy.export_state(tag)
        assert compiled.snapshot_state() == legacy.snapshot_state()


class TestMultiQuerySharing:
    """The multi-query optimizer instantiates shared sub-plans once."""

    def test_q1_q2_share_local_subplan(self):
        catalog = ProductCatalog()
        engine = QueryEngine()
        q1 = FreezerExposureQuery(catalog)
        q2 = TemperatureExposureQuery(catalog)
        q1.bind(engine)
        # Q1 alone: 2 sources, frozen filter, window, join, 3 gate
        # filters, 1 pattern block.
        assert engine.operators_built == 9
        assert engine.operators_shared == 0
        q2.bind(engine)
        # Q2 adds its 2 gate filters and its pattern; the events source,
        # sensors source, frozen filter, window, and join are reused.
        assert engine.operators_built == 12
        assert engine.operators_shared == 5
        assert q1.temperature is q2.temperature
        assert q1.pattern is not q2.pattern

    def test_shared_engine_results_match_standalone(self):
        scenario = cold_chain_scenario(seed=4)
        events = events_from_truth(scenario.truth, scenario.horizon, period=5)
        sensors = scenario.sensor_stream(0)
        # Standalone instances, driven separately.
        alone_q1 = drive(FreezerExposureQuery(scenario.catalog), events, sensors)
        alone_q2 = drive(TemperatureExposureQuery(scenario.catalog), events, sensors)
        # One shared engine, each tuple pushed exactly once.
        engine = QueryEngine()
        q1 = FreezerExposureQuery(scenario.catalog)
        q2 = TemperatureExposureQuery(scenario.catalog)
        q1.bind(engine)
        q2.bind(engine)
        scheduler = StreamScheduler()
        scheduler.route(ObjectEvent, engine.push)
        scheduler.route(SensorReading, engine.push)
        scheduler.run(events, sensors)
        assert q1.alerts == alone_q1.alerts
        assert q2.alerts == alone_q2.alerts
        assert q1.snapshot_state() == alone_q1.snapshot_state()
        assert q2.snapshot_state() == alone_q2.snapshot_state()

    def test_identical_specs_share_everything(self):
        catalog = ProductCatalog()
        engine = QueryEngine()
        TemperatureExposureQuery(catalog).bind(engine)
        built = engine.operators_built
        TemperatureExposureQuery(catalog).bind(engine)
        assert engine.operators_built == built  # nothing new to build

    def test_ledger_surfaces_sharing_gauges(self):
        scenario = cold_chain_scenario(seed=7, n_sites=2, horizon=900)
        with Cluster(scenario.traces, CHAOS_CONFIG) as cluster:
            cluster.add_query(
                "q1", lambda site: FreezerExposureQuery(scenario.catalog)
            )
            cluster.add_query(
                "q2", lambda site: TemperatureExposureQuery(scenario.catalog)
            )
            ledger = cluster.network
            assert ledger.plan_operators_built == 12 * len(cluster.nodes)
            assert ledger.plan_operators_shared == 5 * len(cluster.nodes)
            # A crash-style reset rebinds the plans but must not
            # re-count the site's operators in the gauges.
            cluster.nodes[0].reset(
                {
                    "q1": FreezerExposureQuery(scenario.catalog),
                    "q2": TemperatureExposureQuery(scenario.catalog),
                }
            )
            assert ledger.plan_operators_built == 12 * len(cluster.nodes)
            assert ledger.plan_operators_shared == 5 * len(cluster.nodes)

    def test_engine_push_dispatches_subclasses(self):
        """Engine dispatch keeps the scheduler's isinstance semantics:
        a subclass of a stream's tuple type reaches compiled plans."""

        class EnrichedEvent(ObjectEvent):
            pass

        query = DwellTimeQuery(max_dwell=50, max_gap=100)
        tag = EPC(TagKind.CASE, 0)
        for time in (0, 30, 60):
            query.on_event(EnrichedEvent(time, tag, 0, 3, None))
        assert query.violations() == [(tag, 0, 3, 60)]


# -- federated equivalence -------------------------------------------------


def run_federated(scenario, factories, transport=None, crash=None):
    """One federated run; returns canonical observables + checkpoints."""
    with Cluster(scenario.traces, CHAOS_CONFIG, transport=transport) as cluster:
        for name, factory in sorted(factories.items()):
            cluster.add_query(name, factory)
        cluster.set_sensor_streams(
            {s: scenario.sensor_stream(s) for s in range(len(scenario.traces))}
        )
        if crash is not None:
            site, crash_time, recover_time = crash
            cluster.crash(site, crash_time)
            cluster.recover(site, recover_time)
        cluster.run(scenario.horizon)
        alerts = {
            name: sorted(
                (str(alert.key), alert.start_time, alert.end_time, alert.values)
                for node in cluster.nodes
                for alert in node.queries[name].alerts
            )
            for name in factories
            if hasattr(next(iter(cluster.nodes)).queries[name], "alert_pairs")
        }
        return {
            "alerts": alerts,
            "migrations": cluster.migrations,
            "data_bytes": cluster.network.data_bytes_by_kind(),
            "containment_error": cluster.containment_error(scenario.truth),
            "checkpoints": {
                node.site: node.snapshot() for node in cluster.nodes
            },
        }


class TestFederatedEquivalence:
    """Compiled vs legacy through the full distributed runtime."""

    def test_compiled_matches_legacy_federation(self):
        scenario = chaos_scenario()
        compiled = run_federated(
            scenario,
            {"q2": lambda site: TemperatureExposureQuery(
                scenario.catalog, exposure_duration=400)},
        )
        legacy = run_federated(
            scenario,
            {"q2": lambda site: LegacyTemperatureExposureQuery(
                scenario.catalog, exposure_duration=400)},
        )
        assert compiled["alerts"] == legacy["alerts"]
        assert compiled["migrations"] == legacy["migrations"]  # incl. bytes
        assert compiled["data_bytes"] == legacy["data_bytes"]
        assert compiled["containment_error"] == legacy["containment_error"]
        # Site checkpoints (inference + query blobs) are byte-identical.
        assert compiled["checkpoints"] == legacy["checkpoints"]

    def test_compiled_matches_legacy_under_chaos_seed(self):
        """Same comparison with a seeded fault plan on every link."""
        scenario = chaos_scenario()
        compiled = run_federated(
            scenario,
            {"q2": lambda site: TemperatureExposureQuery(
                scenario.catalog, exposure_duration=400)},
            transport=chaos_transport(17),
        )
        legacy = run_federated(
            scenario,
            {"q2": lambda site: LegacyTemperatureExposureQuery(
                scenario.catalog, exposure_duration=400)},
            transport=chaos_transport(17),
        )
        assert compiled["alerts"] == legacy["alerts"]
        assert compiled["migrations"] == legacy["migrations"]
        assert compiled["data_bytes"] == legacy["data_bytes"]


class TestCompiledPlanFaultTolerance:
    """Compiled plans (incl. the new monitors) survive faults bit-for-bit."""

    def factories(self, scenario):
        return {
            "q2": lambda site: TemperatureExposureQuery(
                scenario.catalog, exposure_duration=400
            ),
            "dwell": lambda site: DwellTimeQuery(max_dwell=400),
            "colocation": lambda site: ColocationBreachQuery(
                scenario.catalog, conflicts=(("frozen", "dry"),), duration=100
            ),
        }

    def test_alert_logs_identical_across_crash_and_duplicates(self):
        scenario = chaos_scenario()
        baseline = run_federated(scenario, self.factories(scenario))
        assert any(baseline["alerts"].values())  # non-vacuous
        chaotic = run_federated(
            scenario,
            self.factories(scenario),
            transport=chaos_transport(29),
            crash=(1, 950, 1050),
        )
        assert chaotic["alerts"] == baseline["alerts"]
        assert chaotic["migrations"] == baseline["migrations"]
        assert chaotic["data_bytes"] == baseline["data_bytes"]

    def test_new_monitors_fire_in_federation(self):
        scenario = chaos_scenario()
        result = run_federated(scenario, self.factories(scenario))
        assert result["alerts"]["dwell"]
        assert result["alerts"]["colocation"]


# -- new declarative monitors (unit semantics) ------------------------------


class TestDwellMonitor:
    def make_events(self, times, tag=EPC(TagKind.CASE, 0), site=0, place=3):
        return [ObjectEvent(t, tag, site, place, None) for t in times]

    def test_fires_after_max_dwell(self):
        query = DwellTimeQuery(max_dwell=50, max_gap=60)
        for event in self.make_events([0, 20, 40, 60]):
            query.on_event(event)
        assert query.violations() == [(EPC(TagKind.CASE, 0), 0, 3, 60)]

    def test_gap_breaks_visit(self):
        query = DwellTimeQuery(max_dwell=50, max_gap=30)
        for event in self.make_events([0, 20, 100, 120]):
            query.on_event(event)
        # 20 → 100 exceeds max_gap: the visit restarts, neither span
        # (0..20 nor 100..120) reaches max_dwell.
        assert query.violations() == []

    def test_separate_places_are_separate_visits(self):
        query = DwellTimeQuery(max_dwell=50, max_gap=200)
        tag = EPC(TagKind.CASE, 0)
        stream = [
            ObjectEvent(0, tag, 0, 3, None),
            ObjectEvent(40, tag, 0, 5, None),  # moved: new partition
            ObjectEvent(100, tag, 0, 5, None),  # span 60 at place 5
        ]
        for event in stream:
            query.on_event(event)
        assert query.violations() == [(tag, 0, 5, 100)]

    def test_items_ignored_for_case_monitor(self):
        query = DwellTimeQuery(max_dwell=10)
        for event in self.make_events([0, 50], tag=EPC(TagKind.ITEM, 0)):
            query.on_event(event)
        assert query.violations() == []


class TestColocationMonitor:
    def catalog(self):
        catalog = ProductCatalog()
        self.food = EPC(TagKind.ITEM, 0)
        self.chem = EPC(TagKind.ITEM, 1)
        catalog.product_types[self.food] = "frozen"
        catalog.product_types[self.chem] = "chemical"
        return catalog

    def test_sustained_conflict_fires(self):
        query = ColocationBreachQuery(self.catalog(), duration=20, max_gap=60)
        stream = []
        for t in range(0, 40, 5):
            stream.append(ObjectEvent(t, self.chem, 0, 7, None))
            stream.append(ObjectEvent(t, self.food, 0, 7, None))
        for event in stream:
            query.on_event(event)
        breached = {tag for tag, _, _, _ in query.breaches()}
        # Both parties see the other as latest occupant and alert.
        assert breached == {self.food, self.chem}
        for _, site, place, _ in query.breaches():
            assert (site, place) == (0, 7)

    def test_separation_resets_run(self):
        query = ColocationBreachQuery(self.catalog(), duration=30, max_gap=200)
        stream = [
            ObjectEvent(0, self.chem, 0, 7, None),
            ObjectEvent(5, self.food, 0, 7, None),   # sees chem: run starts
            ObjectEvent(10, self.food, 0, 7, None),  # sees itself: reset
            ObjectEvent(40, self.food, 0, 7, None),
        ]
        for event in stream:
            query.on_event(event)
        assert query.breaches() == []

    def test_compatible_neighbours_do_not_fire(self):
        catalog = self.catalog()
        other = EPC(TagKind.ITEM, 2)
        catalog.product_types[other] = "frozen"
        query = ColocationBreachQuery(catalog, duration=10, max_gap=60)
        stream = []
        for t in range(0, 40, 5):
            stream.append(ObjectEvent(t, other, 0, 7, None))
            stream.append(ObjectEvent(t, self.food, 0, 7, None))
        for event in stream:
            query.on_event(event)
        assert query.breaches() == []


# -- plan-state codec properties -------------------------------------------

f32 = st.floats(-1e6, 1e6, width=32, allow_nan=False)
f64 = st.floats(allow_nan=False, allow_infinity=False)


class TestCodecProperties:
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 10**6),
                st.integers(-8, 8),
                st.integers(0, 500),
                f64,
            ),
            max_size=12,
        )
    )
    def test_window_row_codec_round_trip(self, rows):
        from repro._util.encoding import ByteReader, ByteWriter

        readings = [SensorReading(*row) for row in rows]
        writer = ByteWriter()
        for reading in readings:
            SENSOR_CODEC.write(writer, reading)
        reader = ByteReader(writer.getvalue())
        back = [SENSOR_CODEC.read(reader) for _ in readings]
        assert back == readings
        assert reader.exhausted()

    @settings(deadline=None)
    @given(
        partitions=st.dictionaries(
            st.tuples(st.integers(-5, 5), st.integers(0, 50)),
            st.tuples(
                st.integers(0, 2),
                st.integers(0, 10**6),
                st.integers(0, 10**6),
                st.lists(f32, max_size=8),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_composite_pattern_bundle_round_trip(self, partitions):
        from repro.queries.compiler import CompiledPattern
        from repro.streams.pattern import PatternState

        tag = EPC(TagKind.CASE, 1)
        # Duration beyond any generated span: absorb never promotes a
        # run to fired, so the assertion isolates the codec itself.
        node = dwell_time_spec(max_dwell=10**7).output
        source = CompiledPattern(node)
        for (site, place), (stage, start, last, values) in partitions.items():
            source.pattern.states[(tag, site, place)] = PatternState(
                stage, start, last, list(values)
            )
        data = source.export_key_state(tag)
        assert data is not None
        target = CompiledPattern(node)
        target.absorb_key_state(tag, data)
        assert set(target.pattern.states) == set(source.pattern.states)
        for key, state in source.pattern.states.items():
            absorbed = target.pattern.states[key]
            # float32 values survive exactly (strategy is 32-bit wide);
            # a quiescent (stage 0) incoming state is deliberately inert.
            if state.stage == 0:
                assert absorbed.stage == 0
            else:
                assert absorbed == state

    @given(
        progress=st.dictionaries(
            st.integers(0, 30),
            st.tuples(
                st.integers(0, 5),
                st.booleans(),
                st.lists(st.integers(0, 9), max_size=6),
            ),
            max_size=5,
        ),
        deviated_alerts=st.lists(
            st.tuples(
                st.integers(0, 30),
                st.integers(0, 10**6),
                st.integers(0, 9),
                st.lists(st.integers(0, 9), max_size=2),
            ),
            max_size=4,
        ),
    )
    def test_route_snapshot_round_trip(self, progress, deviated_alerts):
        from repro._util.encoding import ByteReader, ByteWriter
        from repro.queries.compiler import DeviationAlert, _RouteProgress

        node = RouteConformance(Stream("events"), {})
        source = RouteAutomaton(node)
        for serial, (position, deviated, history) in progress.items():
            source.progress[EPC(TagKind.CASE, serial)] = _RouteProgress(
                position, deviated, list(history)
            )
        source.alerts = [
            DeviationAlert(EPC(TagKind.CASE, serial), time, site, tuple(expected))
            for serial, time, site, expected in deviated_alerts
        ]
        writer = ByteWriter()
        source.write_snapshot(writer)
        target = RouteAutomaton(node)
        reader = ByteReader(writer.getvalue())
        target.read_snapshot(reader)
        assert reader.exhausted()
        assert target.progress == source.progress
        assert target.alerts == source.alerts

    @given(data=st.binary(max_size=40))
    def test_malformed_plan_state_raises_value_error(self, data):
        query = TemperatureExposureQuery(ProductCatalog())
        try:
            query.restore_state(data)
        except ValueError:
            pass  # the only acceptable failure mode

    @given(data=st.binary(max_size=40))
    def test_malformed_composite_bundle_raises_value_error(self, data):
        query = DwellTimeQuery(max_dwell=100)
        try:
            query.import_state(EPC(TagKind.CASE, 0), data)
        except ValueError:
            pass
