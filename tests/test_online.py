"""Unit tests for the online detector and the bounded-memory plumbing.

Covers the BOCPD run-length posterior update, the stability gate's
prunability rules (cooloff, staleness, seeded refresh, posterior
threshold), interval-signal classification from raw readings, and the
:class:`MemoryBudget` machinery: history truncation with absolute event
cursors, budget-clamped windows, critical-region stash/restore, and
window-cache eviction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import (
    CONTRA,
    SILENT,
    SUPPORT,
    IntervalSignals,
    MemoryBudget,
    OnlineChangeDetector,
    OnlineConfig,
    interval_signals,
)
from repro.core.service import ServiceConfig, StreamingInference
from repro.sim.tags import EPC, TagKind
from repro.workloads.scenarios import cold_chain_scenario

ITEM = EPC(TagKind.ITEM, 0)
CASE = EPC(TagKind.CASE, 0)
OTHER_CASE = EPC(TagKind.CASE, 1)


class FakeSignals:
    """Scripted per-tag observations (the detector only calls classify)."""

    def __init__(self, observations: dict[EPC, int], default: int = SILENT):
        self.observations = observations
        self.default = default

    def classify(self, tag: EPC, incumbent: EPC, support_ratio: float = 0.5) -> int:
        return self.observations.get(tag, self.default)


def seeded(detector: OnlineChangeDetector, tag: EPC = ITEM, container: EPC = CASE):
    detector.confirm(tag, container)
    return detector


class TestOnlineConfig:
    def test_defaults_valid(self):
        OnlineConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(hazard=0.0),
            dict(hazard=1.0),
            dict(support_rate=1.0),
            dict(change_rate=0.0),
            dict(stability_runs=0),
            dict(posterior_threshold=0.0),
            dict(posterior_threshold=1.5),
            dict(cooloff_runs=0),
            dict(refresh_interval=-1),
            dict(support_ratio=0.0),
            dict(support_ratio=1.5),
            dict(max_run_length=3, stability_runs=3),
            dict(stale_limit=0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            OnlineConfig(**kwargs)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            MemoryBudget(horizon=0)
        with pytest.raises(ValueError):
            MemoryBudget(retained_runs=0)
        with pytest.raises(ValueError):
            ServiceConfig(recent_history=600, budget=MemoryBudget(horizon=500))


class TestRunLengthPosterior:
    def test_support_accumulates_run_length(self):
        det = seeded(OnlineChangeDetector(OnlineConfig(refresh_interval=0)))
        assert det.run_length_mass(ITEM, 3) == 0.0
        for _ in range(5):
            det.observe(FakeSignals({ITEM: SUPPORT}))
        assert det.run_length_mass(ITEM, 3) > 0.9
        assert det.prunable(ITEM, CASE)
        assert not det.flagged

    def test_contra_flags_and_resets(self):
        config = OnlineConfig(refresh_interval=0)
        det = seeded(OnlineChangeDetector(config))
        for _ in range(5):
            det.observe(FakeSignals({ITEM: SUPPORT}))
        det.observe(FakeSignals({ITEM: CONTRA}))
        assert ITEM in det.flagged
        assert det.run_length_mass(ITEM, config.stability_runs) == 0.0
        # Cooloff forces full inference even after new support.
        assert not det.prunable(ITEM, CASE)
        det.observe(FakeSignals({ITEM: SUPPORT}))
        det.confirm(ITEM, CASE)
        assert not det.prunable(ITEM, CASE)  # still cooling off
        for _ in range(4):
            det.observe(FakeSignals({ITEM: SUPPORT}))
            det.confirm(ITEM, CASE)
        assert det.prunable(ITEM, CASE)

    def test_silence_is_uninformative_but_counts_stale(self):
        config = OnlineConfig(refresh_interval=0, stale_limit=2)
        det = seeded(OnlineChangeDetector(config))
        for _ in range(5):
            det.observe(FakeSignals({ITEM: SUPPORT}))
        mass = det.run_length_mass(ITEM, config.stability_runs)
        det.observe(FakeSignals({}))  # SILENT
        assert det.states[ITEM].stale == 1
        assert ITEM not in det.flagged
        # Hazard diffusion only: mass decays slightly but nothing resets.
        after = det.run_length_mass(ITEM, config.stability_runs + 1)
        assert 0.0 < after <= mass
        det.observe(FakeSignals({}))
        assert det.states[ITEM].stale == 2
        assert not det.prunable(ITEM, CASE)  # stale tags re-enter
        assert det.evict_stale() == 1
        assert ITEM not in det.states

    def test_posterior_is_normalized_and_truncated(self):
        config = OnlineConfig(refresh_interval=0, max_run_length=6)
        det = seeded(OnlineChangeDetector(config))
        for _ in range(20):
            det.observe(FakeSignals({ITEM: SUPPORT}))
        rl = det.states[ITEM].rl
        assert rl.size == config.max_run_length + 1
        assert np.isclose(np.exp(rl).sum(), 1.0)

    def test_prunable_requires_matching_incumbent(self):
        det = seeded(OnlineChangeDetector(OnlineConfig(refresh_interval=0)))
        for _ in range(5):
            det.observe(FakeSignals({ITEM: SUPPORT}))
        assert det.prunable(ITEM, CASE)
        assert not det.prunable(ITEM, OTHER_CASE)
        assert not det.prunable(ITEM, None)
        assert not det.prunable(EPC(TagKind.ITEM, 99), CASE)

    def test_confirm_resets_on_reassignment(self):
        det = seeded(OnlineChangeDetector(OnlineConfig(refresh_interval=0)))
        for _ in range(5):
            det.observe(FakeSignals({ITEM: SUPPORT}))
        det.confirm(ITEM, OTHER_CASE)
        state = det.states[ITEM]
        assert state.incumbent == OTHER_CASE
        assert state.rl.size == 1

    def test_refresh_phases_are_seeded_and_periodic(self):
        config = OnlineConfig(refresh_interval=4)
        det = OnlineChangeDetector(config)
        tags = [EPC(TagKind.ITEM, i) for i in range(32)]
        for tag in tags:
            det.confirm(tag, CASE)
        due_by_boundary = []
        for _ in range(4):
            det.observe(FakeSignals({}, default=SUPPORT))
            due_by_boundary.append({t for t in tags if det.refresh_due(t)})
        # Every tag comes due exactly once per period, on a seed-stable
        # phase, and the load is spread (no boundary takes everything).
        assert set().union(*due_by_boundary) == set(tags)
        assert sum(len(d) for d in due_by_boundary) == len(tags)
        assert max(len(d) for d in due_by_boundary) < len(tags)
        again = OnlineChangeDetector(config)
        again.boundaries = det.boundaries
        assert {t for t in tags if again.refresh_due(t)} == due_by_boundary[-1]


class TestIntervalSignals:
    @pytest.fixture(scope="class")
    def scenario(self):
        return cold_chain_scenario(
            seed=11, n_sites=1, horizon=600, n_exposures=0, n_short_exposures=0
        )

    def test_classify_supports_settled_items(self, scenario):
        truth = scenario.truth
        signals = interval_signals(scenario.trace, 150, 450)
        items = [t for t in truth.tags(TagKind.ITEM)]
        outcomes = [
            signals.classify(tag, truth.container_at(tag, 300)) for tag in items
        ]
        assert outcomes.count(SUPPORT) > 0.8 * len(items)
        assert CONTRA not in outcomes

    def test_classify_contra_for_wrong_location_case(self, scenario):
        truth = scenario.truth
        tag = truth.tags(TagKind.ITEM)[0]
        # A room case is at a different location than the frozen item.
        room_case = sorted(
            c
            for c in truth.tags(TagKind.CASE)
            if c not in scenario.catalog.freezer_cases
        )[0]
        signals = interval_signals(scenario.trace, 150, 450)
        assert signals.classify(tag, room_case) == CONTRA

    def test_silent_when_neither_read(self, scenario):
        signals = interval_signals(scenario.trace, 150, 450)
        ghost_item = EPC(TagKind.ITEM, 10_000)
        ghost_case = EPC(TagKind.CASE, 10_000)
        assert signals.classify(ghost_item, ghost_case) == SILENT
        assert signals.reads(ghost_item) == 0

    def test_empty_interval(self, scenario):
        signals = IntervalSignals(scenario.trace, 0, 0)
        tag = scenario.truth.tags(TagKind.ITEM)[0]
        case = scenario.truth.tags(TagKind.CASE)[0]
        assert signals.classify(tag, case) == SILENT

    def test_support_ratio_tolerates_colocated_rivals(self, scenario):
        truth = scenario.truth
        signals = interval_signals(scenario.trace, 150, 450)
        item = truth.tags(TagKind.ITEM)[0]
        incumbent = truth.container_at(item, 300)
        # Strict winner-take-all would flag co-located cases on count
        # noise; the ratio criterion must not.
        strict = signals.classify(item, incumbent, support_ratio=1.0)
        relaxed = signals.classify(item, incumbent, support_ratio=0.5)
        assert relaxed == SUPPORT
        assert strict in (SUPPORT, CONTRA)


GATED = ServiceConfig(
    run_interval=150,
    recent_history=300,
    truncation="cr",
    emit_events=True,
    event_period=5,
    change_detection=True,
    change_threshold=80.0,
    online=OnlineConfig(),
    budget=MemoryBudget(horizon=450),
)


class TestMemoryBudget:
    @pytest.fixture(scope="class")
    def service(self):
        scenario = cold_chain_scenario(seed=11, n_sites=1, horizon=1500)
        service = StreamingInference(scenario.trace, GATED)
        service.run_until(1500)
        return service

    def test_history_is_truncated(self, service):
        cut = service.last_run_time - GATED.budget.horizon
        assert service.runs_truncated > 0
        assert service.events_truncated > 0
        assert all(r.time >= cut for r in service.runs)
        assert all(e.time >= cut for e in service.events)
        assert all(r.end > cut for r in service.critical_regions.values())

    def test_events_since_survives_truncation(self, service):
        # A consumer that drained everything before truncation holds an
        # absolute cursor larger than the retained list.
        events, cursor = service.events_since(service.events_truncated)
        assert events == service.events
        assert cursor == service.events_truncated + len(service.events)
        tail, same = service.events_since(cursor)
        assert tail == [] and same == cursor
        # A lagging consumer is clamped to the retained prefix rather
        # than silently skipping ahead.
        lagging, _ = service.events_since(0)
        assert lagging == service.events

    def test_windows_clamped_to_horizon(self, service):
        epochs = service._window_epochs(service.last_run_time)
        assert epochs[0] >= service.last_run_time - GATED.budget.horizon

    def test_window_cache_bounded(self, service):
        # Budget-clamped windows never exceed the horizon, so the cache
        # retains at most one horizon's worth of base rows. (Eviction
        # proper — for callers handing the cache unclamped epochs — is
        # exercised directly in test_likelihood.py.)
        assert service._windows.max_age == GATED.budget.horizon
        assert service._windows.cached_rows() <= GATED.budget.horizon

    def test_gate_actually_pruned(self, service):
        assert sum(r.pruned_tags for r in service.runs) > 0
        assert all(
            set(r.phase_seconds) >= {"detector", "prune"} for r in service.runs
        )

    def test_retained_runs_cap(self):
        scenario = cold_chain_scenario(seed=11, n_sites=1, horizon=900)
        config = ServiceConfig(
            run_interval=150,
            recent_history=300,
            budget=MemoryBudget(horizon=600, retained_runs=2),
        )
        service = StreamingInference(scenario.trace, config)
        service.run_until(900)
        assert len(service.runs) == 2

    def test_phases_present_when_gate_disabled(self):
        scenario = cold_chain_scenario(seed=11, n_sites=1, horizon=300)
        service = StreamingInference(
            scenario.trace, ServiceConfig(run_interval=300, recent_history=300)
        )
        record = service.run_at(300)
        assert record.phase_seconds["detector"] == 0.0
        assert record.phase_seconds["prune"] == 0.0
        assert record.pruned_tags == 0


class TestRegionStash:
    def test_pruned_regions_park_and_restore(self):
        scenario = cold_chain_scenario(seed=11, n_sites=1, horizon=1500)
        config = ServiceConfig(
            run_interval=150,
            recent_history=300,
            truncation="cr",
            online=OnlineConfig(refresh_interval=4),
        )
        service = StreamingInference(scenario.trace, config)
        service.run_until(1500)
        stashed = set(service.stashed_regions)
        live = set(service.critical_regions)
        # Stash and live sets are disjoint views of the same ledger.
        assert not (stashed & live)
        assert stashed  # stable tags are parked at the end of the run
        # A parked tag is one the gate pruned on the final boundary.
        final = service.runs[-1]
        assert final.pruned_tags >= len(stashed)
