"""Online-vs-retrospective equivalence, within documented tolerance.

The stability gate is *not* byte-equivalent to the ungated service on
every tag, and cannot be: the retrospective baseline itself flips
near-tied co-located tags between runs (co-located containers co-read
near-equally, so interval evidence cannot discriminate them — that is
EM's job, and EM resolves ties differently as windows slide). The
tolerance this suite pins down, on every scenario x truncation combo:

* **change sets are exactly equal** — the GLR detector runs on full
  evidence either way;
* **containment diffs are confined to the tolerance set** — tags the
  baseline itself flipped mid-stream, plus tags the gate flagged;
* **events restricted to tags outside the tolerance set are
  identical** (ordering included);
* **accuracy vs ground truth is never worse** gated — hysteresis pins
  tags through the baseline's tie-break churn;
* the gate actually prunes (it is not vacuously equivalent).

When the gate has nothing to prune (care facility: every resident is a
CASE tag, the gate only prunes ITEMs) the runs must be fully
identical. And a gated run must satisfy the chaos invariant: faults
plus crash/recovery (checkpoint v3 carries detector state and stashed
regions) may change ledger overhead, never results.

Set ``CHAOS_SEED`` (CI matrix) to verify one extra fault-plan seed.
"""

import os
from dataclasses import replace
from functools import lru_cache

import pytest

from chaos import (
    CHAOS_CONFIG,
    assert_chaos_invariant,
    chaos_scenario,
    chaos_transport,
    run_chaos,
)
from repro.core.online import MemoryBudget, OnlineConfig
from repro.core.service import ServiceConfig, StreamingInference
from repro.sim.tags import TagKind
from repro.workloads.scenarios import care_facility_scenario, cold_chain_scenario

HORIZON = 1500
COMBOS = [(seed, trunc) for seed in (7, 101) for trunc in ("window", "cr")]

CHAOS_SEEDS = (
    [int(os.environ["CHAOS_SEED"])] if os.environ.get("CHAOS_SEED") else [101]
)


def _config(truncation: str, gated: bool) -> ServiceConfig:
    config = ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation=truncation,
        emit_events=True,
        event_period=5,
        change_detection=True,
        change_threshold=80.0,
    )
    return replace(config, online=OnlineConfig()) if gated else config


@lru_cache(maxsize=None)
def _cold_chain(seed: int):
    return cold_chain_scenario(seed=seed, n_sites=1, horizon=HORIZON)


@lru_cache(maxsize=None)
def _pair(seed: int, truncation: str):
    """Run baseline and gated services in lockstep over one scenario.

    Returns ``(scenario, baseline, gated, tolerance)`` where the
    tolerance set is (tags the baseline flipped between runs) union
    (tags the gate flagged).
    """
    scenario = _cold_chain(seed)
    baseline = StreamingInference(scenario.trace, _config(truncation, gated=False))
    gated = StreamingInference(scenario.trace, _config(truncation, gated=True))
    flipped: set = set()
    previous = None
    now = baseline.config.run_interval
    while now <= HORIZON:
        baseline.run_at(now)
        gated.run_at(now)
        if previous is not None:
            flipped |= {
                tag
                for tag, container in baseline.containment.items()
                if tag in previous and previous[tag] != container
            }
        previous = dict(baseline.containment)
        now += baseline.config.run_interval
    return scenario, baseline, gated, flipped | gated.online.flagged


def _accuracy(containment, truth) -> tuple[int, int]:
    items = [(t, c) for t, c in containment.items() if t.kind is TagKind.ITEM]
    return (
        sum(c == truth.container_at(t, HORIZON - 1) for t, c in items),
        len(items),
    )


@pytest.mark.parametrize("seed,truncation", COMBOS)
class TestToleranceEnvelope:
    def test_change_sets_identical(self, seed, truncation):
        _, baseline, gated, _ = _pair(seed, truncation)
        assert {(c.tag, c.new_container) for c in gated.changes} == {
            (c.tag, c.new_container) for c in baseline.changes
        }

    def test_containment_diffs_within_tolerance(self, seed, truncation):
        _, baseline, gated, tolerance = _pair(seed, truncation)
        diffs = {
            tag
            for tag, container in baseline.containment.items()
            if gated.containment.get(tag) != container
        }
        assert diffs <= tolerance
        # The gate must not invent assignments the baseline never made.
        assert set(gated.containment) == set(baseline.containment)

    def test_events_identical_outside_tolerance(self, seed, truncation):
        _, baseline, gated, tolerance = _pair(seed, truncation)
        assert [e for e in gated.events if e.tag not in tolerance] == [
            e for e in baseline.events if e.tag not in tolerance
        ]

    def test_accuracy_never_worse(self, seed, truncation):
        scenario, baseline, gated, _ = _pair(seed, truncation)
        base_hits, total = _accuracy(baseline.containment, scenario.truth)
        gate_hits, gate_total = _accuracy(gated.containment, scenario.truth)
        assert gate_total == total
        assert gate_hits >= base_hits

    def test_gate_prunes_meaningfully(self, seed, truncation):
        _, _, gated, _ = _pair(seed, truncation)
        pruned = sum(r.pruned_tags for r in gated.runs)
        full = sum(r.full_tags for r in gated.runs)
        assert pruned > 0.25 * (pruned + full)


class TestVacuousGate:
    """No ITEM tags -> nothing prunable -> byte-identical runs."""

    @pytest.mark.parametrize("truncation", ["window", "cr"])
    def test_care_facility_identical(self, truncation):
        scenario = care_facility_scenario(seed=7)
        trace = scenario.traces[0]
        baseline = StreamingInference(trace, _config(truncation, gated=False))
        gated = StreamingInference(trace, _config(truncation, gated=True))
        now = baseline.config.run_interval
        while now <= scenario.horizon:
            baseline.run_at(now)
            gated.run_at(now)
            now += baseline.config.run_interval
        assert sum(r.pruned_tags for r in gated.runs) == 0
        assert gated.containment == baseline.containment
        assert gated.events == baseline.events
        assert gated.changes == baseline.changes
        assert not gated.online.flagged


class TestGatedChaos:
    """Faults never change gated results — only ledger overhead."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_chaos_invariant_with_gate(self, seed):
        scenario = chaos_scenario()
        config = replace(
            CHAOS_CONFIG, online=OnlineConfig(), budget=MemoryBudget(horizon=1200)
        )
        baseline = run_chaos(scenario, config=config)
        chaotic = run_chaos(
            scenario,
            config=config,
            transport=chaos_transport(seed),
            crash=(1, 950, 1050),
        )
        assert_chaos_invariant(baseline, chaotic)
