"""Tests for the event-driven site runtime: envelopes, transports,
nodes, federated query routing, and the cluster orchestrator."""

import pytest

from repro.core.service import ServiceConfig
from repro.distributed.coordinator import DistributedDeployment
from repro.distributed.network import Network
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import (
    Cluster,
    ClusterSnapshot,
    Envelope,
    InProcessTransport,
    ThreadedTransport,
)
from repro.runtime.envelope import (
    INFERENCE_STATE,
    QUERY_STATE,
    decode_query_bundle,
    decode_single_query_state,
    decode_state_bundle,
    decode_tag_list,
    encode_query_bundle,
    encode_single_query_state,
    encode_state_bundle,
    encode_tag_list,
)
from repro.sim.tags import EPC, TagKind
from repro.workloads.scenarios import cold_chain_scenario


def tags(n, kind=TagKind.ITEM):
    return [EPC(kind, i) for i in range(n)]


class TestEnvelopeCodecs:
    def test_tag_list_round_trip(self):
        original = tags(5) + [EPC(TagKind.CASE, 9)]
        assert decode_tag_list(encode_tag_list(original)) == original
        assert decode_tag_list(encode_tag_list([])) == []

    def test_state_bundle_round_trip(self):
        states = {t: bytes([i] * 12) for i, t in enumerate(tags(4))}
        assert decode_state_bundle(encode_state_bundle(states)) == states

    def test_state_bundle_compresses_similar_states(self):
        shared = bytes(range(40))
        states = {t: shared + bytes([i]) for i, t in enumerate(tags(10))}
        bundle = encode_state_bundle(states)
        assert len(bundle) < sum(len(s) for s in states.values())

    def test_query_bundle_round_trip(self):
        per_query = {
            "q1": {t: bytes([1, 2, i]) for i, t in enumerate(tags(3))},
            "path": {tags(1)[0]: b"\x01\x00"},
        }
        assert decode_query_bundle(encode_query_bundle(per_query)) == per_query

    def test_single_query_state_round_trip(self):
        tag = EPC(TagKind.ITEM, 42)
        name, back_tag, data = decode_single_query_state(
            encode_single_query_state("q2", tag, b"\x07\x08")
        )
        assert (name, back_tag, data) == ("q2", tag, b"\x07\x08")


class TestInProcessTransport:
    def test_delivers_and_accounts(self):
        transport = InProcessTransport()
        received = []
        transport.register(1, received.append)
        transport.send(Envelope(0, 1, "x", b"12345", time=7))
        transport.flush()
        assert len(received) == 1 and received[0].payload == b"12345"
        assert transport.ledger.bytes_by_kind["x"] == 5
        assert transport.ledger.link_bytes(0, 1) == 5
        assert transport.ledger.link_messages(0, 1) == 1

    def test_unregistered_destination_accounted_but_dropped(self):
        transport = InProcessTransport()
        transport.send(Envelope(0, -2, "ons-lookup", b"ab"))
        assert transport.ledger.bytes_by_kind["ons-lookup"] == 2

    def test_duplicate_registration_rejected(self):
        transport = InProcessTransport()
        transport.register(0, lambda env: None)
        with pytest.raises(ValueError):
            transport.register(0, lambda env: None)

    def test_external_ledger(self):
        ledger = Network()
        transport = InProcessTransport(ledger=ledger)
        transport.send(Envelope(0, 1, "x", b"abc"))
        assert ledger.total_bytes() == 3


class TestThreadedTransport:
    def test_delivers_across_threads(self):
        with ThreadedTransport() as transport:
            received = []
            transport.register(1, received.append)
            for i in range(20):
                transport.send(Envelope(0, 1, "x", bytes([i])))
            transport.flush()
            assert [env.payload[0] for env in received] == list(range(20))

    def test_flush_waits_for_relay_chains(self):
        with ThreadedTransport() as transport:
            sink = []

            def relay(env):
                transport.send(Envelope(1, 2, "hop", env.payload + b"!"))

            transport.register(1, relay)
            transport.register(2, sink.append)
            transport.send(Envelope(0, 1, "hop", b"a"))
            transport.flush()
            assert sink and sink[0].payload == b"a!"
            assert transport.ledger.messages_by_kind["hop"] == 2

    def test_handler_errors_surface_at_flush(self):
        with ThreadedTransport() as transport:
            def boom(env):
                raise RuntimeError("kaboom")

            transport.register(1, boom)
            transport.send(Envelope(0, 1, "x", b""))
            with pytest.raises(RuntimeError):
                transport.flush()

    def test_flush_raises_instead_of_hanging_on_failed_handler(self):
        """Regression: a handler that raises on a worker thread must
        propagate at flush() even while *other* queued work is still in
        flight — the old barrier waited for full quiescence first, so a
        failure alongside a stuck handler hung it forever."""
        import threading

        release = threading.Event()
        with ThreadedTransport() as transport:
            transport.register(1, lambda env: release.wait(timeout=30))
            def boom(env):
                raise RuntimeError("kaboom")

            transport.register(2, boom)
            transport.send(Envelope(0, 1, "x", b""))  # occupies site 1's worker
            transport.send(Envelope(0, 2, "x", b""))  # fails on site 2's worker
            outcome: dict[str, BaseException] = {}

            def call_flush():
                try:
                    transport.flush()
                except RuntimeError as exc:
                    outcome["error"] = exc

            flusher = threading.Thread(target=call_flush)
            flusher.start()
            flusher.join(timeout=5.0)
            hung = flusher.is_alive()
            release.set()  # unblock site 1 before closing either way
            assert not hung, "flush() hung on a failed handler"
            assert "error" in outcome
            assert "kaboom" in repr(outcome["error"].__cause__)

    def test_dispatch_runs_on_worker(self):
        import threading

        with ThreadedTransport() as transport:
            transport.register(3, lambda env: None)
            seen = []
            transport.dispatch(3, lambda: seen.append(threading.current_thread().name))
            transport.flush()
            assert seen == ["site-3"]

    def test_close_is_idempotent(self):
        transport = ThreadedTransport()
        transport.register(0, lambda env: None)
        transport.close()
        transport.close()
        with pytest.raises(RuntimeError):
            transport.send(Envelope(0, 0, "x", b""))


@pytest.fixture(scope="module")
def chain_config():
    return ServiceConfig(
        run_interval=300, recent_history=600, truncation="cr", emit_events=False
    )


class TestClusterDeterminism:
    def test_threaded_matches_inprocess(self, multi_site_chain, chain_config):
        """Acceptance: both transports produce identical results."""
        inproc = Cluster(multi_site_chain.traces, chain_config)
        inproc.run(multi_site_chain.params.horizon)
        with ThreadedTransport() as transport:
            threaded = Cluster(
                multi_site_chain.traces, chain_config, transport=transport
            )
            threaded.run(multi_site_chain.params.horizon)
            assert threaded.containment_error(
                multi_site_chain.truth
            ) == inproc.containment_error(multi_site_chain.truth)
            assert dict(threaded.network.bytes_by_kind) == dict(
                inproc.network.bytes_by_kind
            )
            assert dict(threaded.network.bytes_by_link) == dict(
                inproc.network.bytes_by_link
            )
            assert [m.tag for m in threaded.migrations] == [
                m.tag for m in inproc.migrations
            ]
            for a, b in zip(threaded.snapshots, inproc.snapshots):
                assert a.time == b.time and a.containment == b.containment


class TestBatchedMigration:
    def test_batching_reduces_bytes_same_results(self, multi_site_chain, chain_config):
        batched = Cluster(multi_site_chain.traces, chain_config, batch_migrations=True)
        batched.run(multi_site_chain.params.horizon)
        per_tag = Cluster(multi_site_chain.traces, chain_config, batch_migrations=False)
        per_tag.run(multi_site_chain.params.horizon)
        assert (
            batched.network.bytes_by_kind[INFERENCE_STATE]
            < per_tag.network.bytes_by_kind[INFERENCE_STATE]
        )
        assert (
            batched.network.messages_by_kind[INFERENCE_STATE]
            < per_tag.network.messages_by_kind[INFERENCE_STATE]
        )
        assert batched.containment_error(
            multi_site_chain.truth
        ) == per_tag.containment_error(multi_site_chain.truth)


@pytest.fixture(scope="module")
def federated_scenario():
    return cold_chain_scenario(
        seed=7,
        n_sites=2,
        n_freezer_cases=6,
        n_room_cases=3,
        items_per_case=6,
        n_exposures=4,
        horizon=1500,
        site_leave_time=700,
    )


def run_federated(scenario, transport=None):
    config = ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation="cr",
        emit_events=True,
        event_period=5,
    )
    cluster = Cluster(scenario.traces, config, transport=transport)
    cluster.add_query(
        "q2",
        lambda site: TemperatureExposureQuery(scenario.catalog, exposure_duration=400),
    )
    cluster.set_sensor_streams(
        {site: scenario.sensor_stream(site) for site in range(len(scenario.traces))}
    )
    cluster.run(scenario.horizon)
    return cluster


class TestFederatedQueryRouting:
    def test_query_state_migrates_and_alerts_continue(self, federated_scenario):
        scenario = federated_scenario
        cluster = run_federated(scenario)
        exposed = {tag for tag, _, back in scenario.exposures if back is None}
        # Query state actually crossed the wire.
        assert cluster.network.bytes_by_kind[QUERY_STATE] > 0
        # Exposure runs that started at site 0 alert at site 1...
        site1_alerts = cluster.nodes[1].queries["q2"].alerts
        assert exposed <= {a.key for a in site1_alerts}
        # ...and keep their pre-migration start time (continuity): the
        # run began before the goods left site 0.
        for alert in site1_alerts:
            if alert.key in exposed:
                assert alert.start_time < 700

    def test_threaded_federation_matches(self, federated_scenario):
        scenario = federated_scenario
        inproc = run_federated(scenario)
        with ThreadedTransport() as transport:
            threaded = run_federated(scenario, transport=transport)
            key = lambda c: sorted(
                (str(a.key), a.start_time, a.end_time)
                for node in c.nodes
                for a in node.queries["q2"].alerts
            )
            assert key(threaded) == key(inproc)
            assert dict(threaded.network.bytes_by_kind) == dict(
                inproc.network.bytes_by_kind
            )


class TestFacade:
    def test_facade_surface(self, deployments_facade):
        deployment = deployments_facade
        assert len(deployment.services) == 3
        assert deployment.migrations
        assert deployment.snapshots
        assert deployment.communication_bytes() > 0
        assert 0.0 <= deployment.containment_error() <= 1.0

    def test_containment_error_guards_time_zero(self, multi_site_chain, chain_config):
        """Regression: a snapshot at time 0 must not index truth at -1."""
        deployment = DistributedDeployment(multi_site_chain, chain_config)
        item = multi_site_chain.truth.items()[0]
        deployment.cluster.snapshots.append(
            ClusterSnapshot(0, {item: None}, {item})
        )
        error = deployment.containment_error()
        assert 0.0 <= error <= 1.0

    def test_containment_error_empty_snapshots(self, multi_site_chain, chain_config):
        """Regression: the empty-snapshot path returns 0, not NaN/crash."""
        deployment = DistributedDeployment(multi_site_chain, chain_config)
        assert deployment.containment_error() == 0.0
        deployment.cluster.snapshots.append(ClusterSnapshot(300, {}, set()))
        assert deployment.containment_error() == 0.0

    def test_network_and_transport_both_rejected(self, multi_site_chain, chain_config):
        with pytest.raises(ValueError):
            DistributedDeployment(
                multi_site_chain,
                chain_config,
                network=Network(),
                transport=InProcessTransport(),
            )


@pytest.fixture(scope="module")
def deployments_facade(multi_site_chain, chain_config):
    deployment = DistributedDeployment(multi_site_chain, chain_config)
    deployment.run()
    return deployment
