"""Tests for the event-driven site runtime: envelopes, transports,
nodes, federated query routing, and the cluster orchestrator."""

import pytest

from repro.core.service import ServiceConfig
from repro.distributed.coordinator import DistributedDeployment
from repro.distributed.network import Network
from repro.queries.q2 import TemperatureExposureQuery
from repro.runtime import (
    Cluster,
    ClusterSnapshot,
    Envelope,
    InProcessTransport,
    ProcessTransport,
    ThreadedTransport,
)
from repro.runtime.envelope import (
    INFERENCE_STATE,
    QUERY_STATE,
    decode_query_bundle,
    decode_single_query_state,
    decode_state_bundle,
    decode_tag_list,
    encode_query_bundle,
    encode_single_query_state,
    encode_state_bundle,
    encode_tag_list,
)
from repro.sim.tags import EPC, TagKind
from repro.workloads.scenarios import cold_chain_scenario


def tags(n, kind=TagKind.ITEM):
    return [EPC(kind, i) for i in range(n)]


class TestEnvelopeCodecs:
    def test_tag_list_round_trip(self):
        original = tags(5) + [EPC(TagKind.CASE, 9)]
        assert decode_tag_list(encode_tag_list(original)) == original
        assert decode_tag_list(encode_tag_list([])) == []

    def test_state_bundle_round_trip(self):
        states = {t: bytes([i] * 12) for i, t in enumerate(tags(4))}
        assert decode_state_bundle(encode_state_bundle(states)) == states

    def test_state_bundle_compresses_similar_states(self):
        shared = bytes(range(40))
        states = {t: shared + bytes([i]) for i, t in enumerate(tags(10))}
        bundle = encode_state_bundle(states)
        assert len(bundle) < sum(len(s) for s in states.values())

    def test_query_bundle_round_trip(self):
        per_query = {
            "q1": {t: bytes([1, 2, i]) for i, t in enumerate(tags(3))},
            "path": {tags(1)[0]: b"\x01\x00"},
        }
        assert decode_query_bundle(encode_query_bundle(per_query)) == per_query

    def test_single_query_state_round_trip(self):
        tag = EPC(TagKind.ITEM, 42)
        name, back_tag, data = decode_single_query_state(
            encode_single_query_state("q2", tag, b"\x07\x08")
        )
        assert (name, back_tag, data) == ("q2", tag, b"\x07\x08")


class TestInProcessTransport:
    def test_delivers_and_accounts(self):
        transport = InProcessTransport()
        received = []
        transport.register(1, received.append)
        transport.send(Envelope(0, 1, "x", b"12345", time=7))
        transport.flush()
        assert len(received) == 1 and received[0].payload == b"12345"
        assert transport.ledger.bytes_by_kind["x"] == 5
        assert transport.ledger.link_bytes(0, 1) == 5
        assert transport.ledger.link_messages(0, 1) == 1

    def test_unregistered_destination_accounted_but_dropped(self):
        transport = InProcessTransport()
        transport.send(Envelope(0, -2, "ons-lookup", b"ab"))
        assert transport.ledger.bytes_by_kind["ons-lookup"] == 2

    def test_duplicate_registration_rejected(self):
        transport = InProcessTransport()
        transport.register(0, lambda env: None)
        with pytest.raises(ValueError):
            transport.register(0, lambda env: None)

    def test_external_ledger(self):
        ledger = Network()
        transport = InProcessTransport(ledger=ledger)
        transport.send(Envelope(0, 1, "x", b"abc"))
        assert ledger.total_bytes() == 3


class TestThreadedTransport:
    def test_delivers_across_threads(self):
        with ThreadedTransport() as transport:
            received = []
            transport.register(1, received.append)
            for i in range(20):
                transport.send(Envelope(0, 1, "x", bytes([i])))
            transport.flush()
            assert [env.payload[0] for env in received] == list(range(20))

    def test_flush_waits_for_relay_chains(self):
        with ThreadedTransport() as transport:
            sink = []

            def relay(env):
                transport.send(Envelope(1, 2, "hop", env.payload + b"!"))

            transport.register(1, relay)
            transport.register(2, sink.append)
            transport.send(Envelope(0, 1, "hop", b"a"))
            transport.flush()
            assert sink and sink[0].payload == b"a!"
            assert transport.ledger.messages_by_kind["hop"] == 2

    def test_handler_errors_surface_at_flush(self):
        with ThreadedTransport() as transport:
            def boom(env):
                raise RuntimeError("kaboom")

            transport.register(1, boom)
            transport.send(Envelope(0, 1, "x", b""))
            with pytest.raises(RuntimeError):
                transport.flush()

    def test_flush_raises_instead_of_hanging_on_failed_handler(self):
        """Regression: a handler that raises on a worker thread must
        propagate at flush() even while *other* queued work is still in
        flight — the old barrier waited for full quiescence first, so a
        failure alongside a stuck handler hung it forever."""
        import threading

        release = threading.Event()
        with ThreadedTransport() as transport:
            transport.register(1, lambda env: release.wait(timeout=30))
            def boom(env):
                raise RuntimeError("kaboom")

            transport.register(2, boom)
            transport.send(Envelope(0, 1, "x", b""))  # occupies site 1's worker
            transport.send(Envelope(0, 2, "x", b""))  # fails on site 2's worker
            outcome: dict[str, BaseException] = {}

            def call_flush():
                try:
                    transport.flush()
                except RuntimeError as exc:
                    outcome["error"] = exc

            flusher = threading.Thread(target=call_flush)
            flusher.start()
            flusher.join(timeout=5.0)
            hung = flusher.is_alive()
            release.set()  # unblock site 1 before closing either way
            assert not hung, "flush() hung on a failed handler"
            assert "error" in outcome
            assert "kaboom" in repr(outcome["error"].__cause__)

    def test_dispatch_runs_on_worker(self):
        import threading

        with ThreadedTransport() as transport:
            transport.register(3, lambda env: None)
            seen = []
            transport.dispatch(3, lambda: seen.append(threading.current_thread().name))
            transport.flush()
            assert seen == ["site-3"]

    def test_close_is_idempotent(self):
        transport = ThreadedTransport()
        transport.register(0, lambda env: None)
        transport.close()
        transport.close()
        with pytest.raises(RuntimeError):
            transport.send(Envelope(0, 0, "x", b""))

    def test_close_after_handler_error(self):
        """Regression: close() after a worker's handler raised must join
        the (still looping) worker and stay idempotent — it used to rely
        on callers never retrying."""
        transport = ThreadedTransport()

        def boom(env):
            raise RuntimeError("kaboom")

        transport.register(1, boom)
        transport.send(Envelope(0, 1, "x", b""))
        with pytest.raises(RuntimeError):
            transport.flush()
        transport.close()
        assert transport._workers == {}
        transport.close()  # second close is a no-op, not an error
        assert transport._workers == {}

    def test_close_retries_stuck_worker(self):
        """Regression: a worker that outlives the close timeout must stay
        registered so a later close() can actually reap it — the old
        close cleared the registry over the live thread (leaking it) and
        then early-returned on every retry."""
        import threading

        release = threading.Event()
        transport = ThreadedTransport()
        transport.CLOSE_TIMEOUT = 0.05
        transport.register(1, lambda env: release.wait(timeout=30))
        transport.register(2, lambda env: None)
        transport.send(Envelope(0, 1, "x", b""))
        transport.close()
        # Site 2's idle worker joined; site 1's blocked worker did not.
        assert list(transport._workers) == [1]
        assert transport._workers[1].is_alive()
        release.set()
        transport.CLOSE_TIMEOUT = 5.0
        transport.close()
        assert transport._workers == {}


def hosted_process_transport(n_sites=4, n_workers=2, **kwargs):
    """A started ProcessTransport hosting ``n_sites`` trivial sites.

    Each site's op table echoes values and serves a minimal (but valid)
    site checkpoint header so ``move_site`` passes its peek validation;
    ``adopt``'s reset/restore calls are absorbed by stubs.
    """
    from repro._util.encoding import ByteWriter
    from repro.runtime.checkpoint import CHECKPOINT_VERSION

    transport = ProcessTransport(n_workers=n_workers, **kwargs)

    def fake_checkpoint(site):
        writer = ByteWriter()
        writer.varint(CHECKPOINT_VERSION)
        writer.svarint(site)
        return writer.getvalue()

    for site in range(n_sites):
        transport.register(site, lambda env: None)
        transport.host_site(
            site,
            {
                "attach": lambda shim: None,
                "echo": lambda *args: args,
                "blob_len": lambda blob: len(blob),
                "make_blob": lambda n: bytes(range(256)) * (n // 256),
                "boom": lambda: 1 // 0,
                "snapshot": (lambda s: lambda: fake_checkpoint(s))(site),
                "reset_fresh": lambda: None,
                "restore": lambda blob: None,
            },
        )
    return transport


class TestProcessTransport:
    def test_delivers_and_accounts_without_hosted_sites(self):
        """With nothing hosted it degenerates to synchronous delivery."""
        with ProcessTransport() as transport:
            received = []
            transport.register(1, received.append)
            transport.send(Envelope(0, 1, "x", b"12345", time=7))
            transport.flush()
            assert len(received) == 1 and received[0].payload == b"12345"
            assert transport.ledger.bytes_by_kind["x"] == 5
            assert transport._workers == []  # never forked

    def test_site_call_runs_locally_before_fork_and_remotely_after(self):
        with hosted_process_transport() as transport:
            assert transport.site_call(0, "echo", 1, "a") == (1, "a")
            assert not transport._started
            transport.site_cast(0, "echo", 1)  # first cast forks the workers
            assert transport._started and len(transport._workers) == 2
            assert transport.site_call(3, "echo", 2, "b") == (2, "b")
            transport.flush()

    def test_shard_map_round_robin_and_explicit(self):
        with hosted_process_transport() as transport:
            transport.site_cast(0, "echo")
            assert transport.shard_map == {0: 0, 1: 1, 2: 0, 3: 1}
        explicit = {0: 1, 1: 1, 2: 1, 3: 0}
        with hosted_process_transport(shard_map=explicit) as transport:
            transport.site_cast(0, "echo")
            assert transport.shard_map == explicit

    def test_shared_memory_blob_plane_round_trips(self):
        """Payloads past the shm threshold cross intact, both ways."""
        from repro.runtime.process import SHM_THRESHOLD

        big = SHM_THRESHOLD * 2
        with hosted_process_transport() as transport:
            transport.site_cast(0, "echo")  # fork first
            assert transport.site_call(1, "blob_len", b"\x07" * big) == big
            blob = transport.site_call(1, "make_blob", big)
            assert len(blob) == big and blob == bytes(range(256)) * (big // 256)

    def test_worker_op_error_surfaces_with_traceback(self):
        with hosted_process_transport() as transport:
            transport.site_cast(0, "echo")
            with pytest.raises(RuntimeError, match="ZeroDivisionError"):
                transport.site_call(1, "boom")

    def test_dead_worker_raises_worker_died_instead_of_hanging(self):
        """Regression: a worker dying mid-command used to leave the
        parent blocked forever on the FIFO reply read. The liveness
        poll must surface WorkerDied naming the worker and the op."""
        import os

        from repro.runtime import WorkerDied

        transport = ProcessTransport(n_workers=2)
        for site in range(2):
            transport.register(site, lambda env: None)
            transport.host_site(
                site,
                {
                    "attach": lambda shim: None,
                    "echo": lambda *args: args,
                    "die": lambda: os._exit(3),
                },
            )
        try:
            transport.site_cast(0, "echo")  # fork the workers
            transport.flush()
            with pytest.raises(WorkerDied, match="die@site0") as err:
                transport.site_call(0, "die")
            assert err.value.worker == 0
            assert err.value.op == "call die@site0"
        finally:
            transport.close()

    def test_cast_error_surfaces_at_flush(self):
        with hosted_process_transport() as transport:
            transport.site_cast(1, "boom")
            with pytest.raises(RuntimeError, match="ZeroDivisionError"):
                transport.flush()

    def test_move_site_updates_shard_and_gauges(self):
        with hosted_process_transport() as transport:
            transport.site_cast(0, "echo")
            transport.move_site(0, 1)
            assert transport.shard_map[0] == 1
            assert transport.ledger.rebalances == 1
            assert transport.ledger.shard_sites == {0: 1, 1: 3}
            stats = {s["worker"]: s["hosted_sites"] for s in transport.worker_stats()}
            assert stats == {0: [2], 1: [0, 1, 3]}
            with pytest.raises(ValueError, match="no worker"):
                transport.move_site(0, 9)

    def test_rebalancer_moves_hottest_site_off_busiest_worker(self):
        """Auto policy: per-site ledger byte deltas pick the move."""
        with hosted_process_transport() as transport:
            transport.site_cast(0, "echo")
            # Worker 0 hosts {0, 2}; make site 0 dominate the traffic.
            transport.ledger.send(0, 99, "data", b"x" * 100_000)
            assert transport.maybe_rebalance() is True
            assert transport.shard_map[0] == 1
            assert transport.ledger.rebalances == 1
            # Balanced traffic afterwards: no further move.
            assert transport.maybe_rebalance() is False

    def test_rebalancer_tolerates_balanced_load(self):
        with hosted_process_transport() as transport:
            transport.site_cast(0, "echo")
            for site in range(4):
                transport.ledger.send(site, 99, "data", b"x" * 1000)
            assert transport.maybe_rebalance() is False
            assert transport.ledger.rebalances == 0

    def test_scheduled_move_fires_at_its_boundary(self):
        with hosted_process_transport(scheduled_moves={2: (3, 0)}) as transport:
            transport.site_cast(0, "echo")
            assert transport.maybe_rebalance() is False
            assert transport.maybe_rebalance() is True
            assert transport.shard_map[3] == 0

    def test_close_is_idempotent_and_rejects_sends(self):
        transport = hosted_process_transport()
        transport.site_cast(0, "echo")
        transport.close()
        transport.close()
        assert transport._workers == []
        with pytest.raises(RuntimeError, match="closed"):
            transport.send(Envelope(0, 1, "x", b""))

    def test_registration_closed_after_fork_for_hosting_only(self):
        with hosted_process_transport() as transport:
            transport.site_cast(0, "echo")
            # Parent-resident handlers (e.g. a frontend) may still join...
            transport.register(-3, lambda env: None)
            # ...but new *hosted* sites cannot appear after the fork.
            with pytest.raises(RuntimeError, match="forked"):
                transport.host_site(-3, {"attach": lambda shim: None})


@pytest.fixture(scope="module")
def chain_config():
    return ServiceConfig(
        run_interval=300, recent_history=600, truncation="cr", emit_events=False
    )


class TestClusterDeterminism:
    def test_threaded_matches_inprocess(self, multi_site_chain, chain_config):
        """Acceptance: both transports produce identical results."""
        inproc = Cluster(multi_site_chain.traces, chain_config)
        inproc.run(multi_site_chain.params.horizon)
        with ThreadedTransport() as transport:
            threaded = Cluster(
                multi_site_chain.traces, chain_config, transport=transport
            )
            threaded.run(multi_site_chain.params.horizon)
            assert threaded.containment_error(
                multi_site_chain.truth
            ) == inproc.containment_error(multi_site_chain.truth)
            assert dict(threaded.network.bytes_by_kind) == dict(
                inproc.network.bytes_by_kind
            )
            assert dict(threaded.network.bytes_by_link) == dict(
                inproc.network.bytes_by_link
            )
            assert [m.tag for m in threaded.migrations] == [
                m.tag for m in inproc.migrations
            ]
            for a, b in zip(threaded.snapshots, inproc.snapshots):
                assert a.time == b.time and a.containment == b.containment

    def test_process_matches_inprocess(self, multi_site_chain, chain_config):
        """Sharded OS workers preserve every observable result and byte."""
        inproc = Cluster(multi_site_chain.traces, chain_config)
        inproc.run(multi_site_chain.params.horizon)
        with ProcessTransport(n_workers=2) as transport:
            sharded = Cluster(
                multi_site_chain.traces, chain_config, transport=transport
            )
            sharded.run(multi_site_chain.params.horizon)
            assert sharded.containment_error(
                multi_site_chain.truth
            ) == inproc.containment_error(multi_site_chain.truth)
            assert dict(sharded.network.bytes_by_kind) == dict(
                inproc.network.bytes_by_kind
            )
            assert dict(sharded.network.bytes_by_link) == dict(
                inproc.network.bytes_by_link
            )
            assert [m.tag for m in sharded.migrations] == [
                m.tag for m in inproc.migrations
            ]
            for a, b in zip(sharded.snapshots, inproc.snapshots):
                assert a.time == b.time and a.containment == b.containment
            # The worker plane really ran: both shards moved bytes.
            rows = sharded.network.worker_rows()
            assert [row[0] for row in rows] == [0, 1]
            assert all(row[2] > 0 and row[3] > 0 for row in rows)


class TestBatchedMigration:
    def test_batching_reduces_bytes_same_results(self, multi_site_chain, chain_config):
        batched = Cluster(multi_site_chain.traces, chain_config, batch_migrations=True)
        batched.run(multi_site_chain.params.horizon)
        per_tag = Cluster(multi_site_chain.traces, chain_config, batch_migrations=False)
        per_tag.run(multi_site_chain.params.horizon)
        assert (
            batched.network.bytes_by_kind[INFERENCE_STATE]
            < per_tag.network.bytes_by_kind[INFERENCE_STATE]
        )
        assert (
            batched.network.messages_by_kind[INFERENCE_STATE]
            < per_tag.network.messages_by_kind[INFERENCE_STATE]
        )
        assert batched.containment_error(
            multi_site_chain.truth
        ) == per_tag.containment_error(multi_site_chain.truth)


@pytest.fixture(scope="module")
def federated_scenario():
    return cold_chain_scenario(
        seed=7,
        n_sites=2,
        n_freezer_cases=6,
        n_room_cases=3,
        items_per_case=6,
        n_exposures=4,
        horizon=1500,
        site_leave_time=700,
    )


def run_federated(scenario, transport=None):
    config = ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation="cr",
        emit_events=True,
        event_period=5,
    )
    cluster = Cluster(scenario.traces, config, transport=transport)
    cluster.add_query(
        "q2",
        lambda site: TemperatureExposureQuery(scenario.catalog, exposure_duration=400),
    )
    cluster.set_sensor_streams(
        {site: scenario.sensor_stream(site) for site in range(len(scenario.traces))}
    )
    cluster.run(scenario.horizon)
    return cluster


class TestFederatedQueryRouting:
    def test_query_state_migrates_and_alerts_continue(self, federated_scenario):
        scenario = federated_scenario
        cluster = run_federated(scenario)
        exposed = {tag for tag, _, back in scenario.exposures if back is None}
        # Query state actually crossed the wire.
        assert cluster.network.bytes_by_kind[QUERY_STATE] > 0
        # Exposure runs that started at site 0 alert at site 1...
        site1_alerts = cluster.nodes[1].queries["q2"].alerts
        assert exposed <= {a.key for a in site1_alerts}
        # ...and keep their pre-migration start time (continuity): the
        # run began before the goods left site 0.
        for alert in site1_alerts:
            if alert.key in exposed:
                assert alert.start_time < 700

    def test_threaded_federation_matches(self, federated_scenario):
        scenario = federated_scenario
        inproc = run_federated(scenario)
        with ThreadedTransport() as transport:
            threaded = run_federated(scenario, transport=transport)
            key = lambda c: sorted(
                (str(a.key), a.start_time, a.end_time)
                for node in c.nodes
                for a in node.queries["q2"].alerts
            )
            assert key(threaded) == key(inproc)
            assert dict(threaded.network.bytes_by_kind) == dict(
                inproc.network.bytes_by_kind
            )


class TestFacade:
    def test_facade_surface(self, deployments_facade):
        deployment = deployments_facade
        assert len(deployment.services) == 3
        assert deployment.migrations
        assert deployment.snapshots
        assert deployment.communication_bytes() > 0
        assert 0.0 <= deployment.containment_error() <= 1.0

    def test_containment_error_guards_time_zero(self, multi_site_chain, chain_config):
        """Regression: a snapshot at time 0 must not index truth at -1."""
        deployment = DistributedDeployment(multi_site_chain, chain_config)
        item = multi_site_chain.truth.items()[0]
        deployment.cluster.snapshots.append(
            ClusterSnapshot(0, {item: None}, {item})
        )
        error = deployment.containment_error()
        assert 0.0 <= error <= 1.0

    def test_containment_error_empty_snapshots(self, multi_site_chain, chain_config):
        """Regression: the empty-snapshot path returns 0, not NaN/crash."""
        deployment = DistributedDeployment(multi_site_chain, chain_config)
        assert deployment.containment_error() == 0.0
        deployment.cluster.snapshots.append(ClusterSnapshot(300, {}, set()))
        assert deployment.containment_error() == 0.0

    def test_network_and_transport_both_rejected(self, multi_site_chain, chain_config):
        with pytest.raises(ValueError):
            DistributedDeployment(
                multi_site_chain,
                chain_config,
                network=Network(),
                transport=InProcessTransport(),
            )


@pytest.fixture(scope="module")
def deployments_facade(multi_site_chain, chain_config):
    deployment = DistributedDeployment(multi_site_chain, chain_config)
    deployment.run()
    return deployment
