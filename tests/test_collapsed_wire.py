"""Wire-format hardening tests: CollapsedState round trips and the
state-diff codec, including malformed/adversarial byte strings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.collapsed import CollapsedState
from repro.distributed.sharing import apply_diff, state_diff
from repro.sim.tags import EPC, TagKind

ITEM = EPC(TagKind.ITEM, 7)
CASE = EPC(TagKind.CASE, 3)


def epcs():
    return st.builds(
        EPC,
        st.sampled_from([TagKind.PALLET, TagKind.CASE, TagKind.ITEM]),
        st.integers(0, 2**20),
    )


class TestCollapsedRoundTrip:
    def test_empty_weights(self):
        state = CollapsedState(ITEM)
        back = CollapsedState.from_bytes(state.to_bytes())
        assert back.tag == ITEM
        assert back.weights == {}
        assert back.container is None
        assert back.changed_at is None

    def test_changed_at_zero_distinct_from_none(self):
        at_zero = CollapsedState(ITEM, changed_at=0)
        assert CollapsedState.from_bytes(at_zero.to_bytes()).changed_at == 0
        unset = CollapsedState(ITEM, changed_at=None)
        assert CollapsedState.from_bytes(unset.to_bytes()).changed_at is None

    @given(
        tag=epcs(),
        container=st.none() | epcs(),
        changed_at=st.none() | st.integers(0, 10**6),
        weights=st.dictionaries(
            epcs(), st.floats(-100, 100, width=32), max_size=8
        ),
    )
    @settings(max_examples=60)
    def test_round_trip(self, tag, container, changed_at, weights):
        state = CollapsedState(tag, weights, container, changed_at)
        back = CollapsedState.from_bytes(state.to_bytes())
        assert back.tag == tag
        assert back.container == container
        assert back.changed_at == changed_at
        assert set(back.weights) == set(weights)
        for candidate, weight in weights.items():
            assert back.weights[candidate] == pytest.approx(weight, rel=1e-6, abs=1e-6)


class TestCollapsedAdversarial:
    @pytest.mark.parametrize(
        "data",
        [
            b"",  # nothing
            b"\x02",  # tag kind without serial
            b"\x03",  # the None sentinel where a tag is required
            b"\x02\x07\x03\x00\x05",  # claims 5 weights, supplies none
            b"\x02\x07\x03\x00\x01\x02",  # candidate without its float
            b"\xff\xff\xff",  # unterminated varint
            b"\x09\x00\x03\x00\x00",  # kind 9 is not a TagKind
        ],
    )
    def test_malformed_raises_value_error(self, data):
        with pytest.raises(ValueError):
            CollapsedState.from_bytes(data)

    @given(data=st.binary(max_size=64))
    @settings(max_examples=120)
    def test_never_leaks_decoder_internals(self, data):
        """Arbitrary bytes either decode or raise ValueError — nothing else."""
        try:
            state = CollapsedState.from_bytes(data)
        except ValueError:
            return
        assert isinstance(state, CollapsedState)


class TestStateDiff:
    @given(
        base=st.binary(max_size=80),
        target=st.binary(max_size=80),
    )
    @settings(max_examples=80)
    def test_round_trip(self, base, target):
        assert apply_diff(base, state_diff(base, target)) == target

    def test_identical_state_is_one_byte(self):
        """Opcode 2: quiescent automata are byte-identical across a
        container's objects; the diff must collapse to a single byte."""
        state = bytes(range(30))
        diff = state_diff(state, state)
        assert diff == b"\x02"
        assert apply_diff(state, diff) == state

    def test_empty_base_and_target(self):
        assert apply_diff(b"", state_diff(b"", b"")) == b""
        assert apply_diff(b"", state_diff(b"", b"xyz")) == b"xyz"
        assert apply_diff(b"abc", state_diff(b"abc", b"")) == b""

    @given(base=st.binary(max_size=60), target=st.binary(max_size=60))
    @settings(max_examples=80)
    def test_diff_never_much_larger_than_target(self, base, target):
        """The cost-aware encoder's ceiling: a whole-state literal."""
        assert len(state_diff(base, target)) <= len(target) + 2 or target == base

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            apply_diff(b"abc", b"\x05")

    @pytest.mark.parametrize(
        "diff",
        [
            b"\x00",  # copy without start/len
            b"\x00\x01",  # copy without len
            b"\x01\x0a",  # insert claims 10 literal bytes, has none
            b"\xff",  # unterminated varint
        ],
    )
    def test_truncated_diff_raises_value_error(self, diff):
        with pytest.raises(ValueError):
            apply_diff(b"abcdef", diff)

    @given(base=st.binary(max_size=40), diff=st.binary(max_size=40))
    @settings(max_examples=120)
    def test_adversarial_diffs_contained(self, base, diff):
        """Arbitrary diff bytes either apply or raise ValueError."""
        try:
            out = apply_diff(base, diff)
        except ValueError:
            return
        assert isinstance(out, bytes)
