"""Tests for change-point detection, evidence, and critical regions."""

import numpy as np
import pytest

from repro.core.changepoint import ChangePointDetector, calibrate_threshold
from repro.core.evidence import evidence_tracks
from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import InferenceConfig, RFInfer
from repro.core.truncation import find_all_critical_regions, find_critical_region
from repro.sim.tags import TagKind
from repro.workloads.scenarios import evidence_scenario


@pytest.fixture(scope="module")
def fig4(small_chain):
    sc = evidence_scenario(seed=2)
    window = TraceWindow.from_range(sc.trace, 0, sc.horizon)
    out = RFInfer(
        window,
        InferenceConfig(candidate_pruning=False),
        objects=[sc.object_tag],
        containers=[sc.real, sc.nrc, sc.nrnc],
    ).run()
    return sc, out


class TestEvidence:
    def test_real_container_has_best_total(self, fig4):
        sc, out = fig4
        tracks = evidence_tracks(out, sc.object_tag)
        assert tracks.best() == sc.real

    def test_belt_region_is_most_discriminative(self, fig4):
        sc, out = fig4
        tracks = evidence_tracks(out, sc.object_tag)
        belt_margin = tracks.margin_in(85, 115)
        door_margin = tracks.margin_in(10, 40)
        assert belt_margin > door_margin

    def test_cumulative_is_running_sum(self, fig4):
        sc, out = fig4
        tracks = evidence_tracks(out, sc.object_tag)
        cum = tracks.cumulative()[sc.real]
        np.testing.assert_allclose(cum, np.cumsum(tracks.point[sc.real]))

    def test_nrnc_keeps_falling_after_belt(self, fig4):
        sc, out = fig4
        tracks = evidence_tracks(out, sc.object_tag)
        cum = tracks.cumulative()
        row_belt = out.window.row_of(120)
        # NRNC (never co-located again) loses more evidence after the
        # belt than NRC (co-located again on the shelf) — Fig. 4(a).
        nrc_tail = cum[sc.nrc][-1] - cum[sc.nrc][row_belt]
        nrnc_tail = cum[sc.nrnc][-1] - cum[sc.nrnc][row_belt]
        assert nrnc_tail < nrc_tail


class TestCriticalRegion:
    def test_region_found_around_belt(self, fig4):
        sc, out = fig4
        region = find_critical_region(out, sc.object_tag, width=40)
        assert region is not None
        # The window containing the belt passage discriminates best;
        # later shelf windows also qualify only if NRC never ties R.
        assert region.start < sc.horizon

    def test_region_requires_two_candidates(self, small_chain):
        window = TraceWindow.from_range(small_chain.trace, 0, 300)
        items = window.tags(TagKind.ITEM)[:1]
        cases = window.tags(TagKind.CASE)[:1]
        out = RFInfer(
            window,
            InferenceConfig(candidate_pruning=False),
            objects=items,
            containers=cases,
        ).run()
        assert find_critical_region(out, items[0]) is None

    def test_find_all_returns_subset_of_objects(self, fig4):
        sc, out = fig4
        regions = find_all_critical_regions(out, width=40)
        assert set(regions) <= {sc.object_tag}

    def test_contains(self, fig4):
        sc, out = fig4
        region = find_critical_region(out, sc.object_tag, width=40)
        assert region.start in region
        assert region.end not in region


class TestChangePointDetector:
    def test_no_change_on_stable_object(self, fig4):
        sc, out = fig4
        detector = ChangePointDetector(threshold=50.0)
        assert detector.detect(out, sc.object_tag) is None

    def test_detects_injected_change(self, anomaly_chain):
        from repro.core.service import ServiceConfig, StreamingInference

        service = StreamingInference(
            anomaly_chain.trace,
            ServiceConfig(
                run_interval=300,
                recent_history=600,
                truncation="cr",
                change_detection=True,
                change_threshold=80.0,
                emit_events=False,
            ),
        )
        service.run_until(1500)
        assert len(service.changes) >= 1
        detected_tags = {c.tag for c in service.changes}
        true_tags = {c.tag for c in anomaly_chain.truth.changes}
        assert detected_tags & true_tags

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ChangePointDetector(threshold=-1.0)

    def test_statistic_nonnegative(self, fig4):
        sc, out = fig4
        detector = ChangePointDetector(threshold=0.0)
        delta, _, _, _ = detector.statistic(out, sc.object_tag)
        assert delta >= 0.0

    def test_floor_excludes_prefix_evidence(self, fig4):
        sc, out = fig4
        detector = ChangePointDetector(threshold=0.0)
        full, _, _, _ = detector.statistic(out, sc.object_tag)
        floored, _, _, _ = detector.statistic(out, sc.object_tag, floor=200)
        # With only the shelf suffix left there is less to split.
        assert floored <= full + 1e-9

    def test_requires_evidence(self, small_chain):
        window = TraceWindow.from_range(small_chain.trace, 0, 300)
        out = RFInfer(window, InferenceConfig(keep_evidence=False)).run()
        detector = ChangePointDetector(threshold=1.0)
        with pytest.raises(ValueError):
            detector.statistic(out, window.tags(TagKind.ITEM)[0])


class TestCalibration:
    def test_journey_calibration_positive_finite(self):
        delta = calibrate_threshold(n_samples=4, length=200, seed=1)
        assert 0.0 <= delta < 1e6

    def test_deployment_calibration(self):
        from repro.core.calibration import calibrate_threshold_from_deployment

        delta = calibrate_threshold_from_deployment(
            horizon=900, items_per_case=4, injection_period=300, seed=2
        )
        assert 0.0 <= delta < 1e6
