"""Tests for the supply-chain DAG simulation and lab trace generator."""

from repro.sim.lab import LAB_PROFILES, generate_lab_trace
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.tags import TagKind
from repro.sim.trace import AWAY


class TestSupplyChain:
    def test_population_counts(self, small_chain):
        params = small_chain.params
        pallets = len(small_chain.truth.pallets())
        assert len(small_chain.truth.cases()) == pallets * params.cases_per_pallet
        assert (
            len(small_chain.truth.items())
            == pallets * params.cases_per_pallet * params.items_per_case
        )

    def test_items_start_in_their_case(self, small_chain):
        truth = small_chain.truth
        for item in truth.items()[:20]:
            container = truth.container_at(item, 1)
            assert container is not None
            assert container.kind is TagKind.CASE

    def test_no_changes_without_anomalies(self, small_chain):
        assert small_chain.truth.changes == []

    def test_anomalies_recorded(self, anomaly_chain):
        assert len(anomaly_chain.truth.changes) > 3
        for change in anomaly_chain.truth.changes:
            assert change.tag.kind is TagKind.ITEM

    def test_objects_reach_second_site(self, multi_site_chain):
        sites_seen = {t.site for t in multi_site_chain.traces if len(t) > 0}
        assert {0, 1} <= sites_seen

    def test_readings_sorted_and_in_horizon(self, small_chain):
        trace = small_chain.trace
        times = [r.time for r in trace.readings]
        assert times == sorted(times)
        assert times[-1] < small_chain.params.horizon

    def test_deterministic_given_seed(self):
        params = SupplyChainParams(horizon=400, items_per_case=4, seed=77)
        a = simulate(params)
        b = simulate(params)
        assert a.trace.readings == b.trace.readings

    def test_dag_round_robin_dispatch(self):
        params = SupplyChainParams(
            n_warehouses=3,
            edges=((0, 1), (0, 2)),
            horizon=1600,
            items_per_case=4,
            injection_period=120,
            seed=5,
        )
        result = simulate(params)
        # Both successor warehouses eventually observe objects.
        assert len(result.traces[1]) > 0
        assert len(result.traces[2]) > 0


class TestLab:
    def test_profiles_cover_t1_to_t8(self):
        assert set(LAB_PROFILES) == {f"T{i}" for i in range(1, 9)}

    def test_stable_profiles_have_no_changes(self):
        lab = generate_lab_trace("T2", seed=1)
        assert lab.truth.changes == []

    def test_change_profiles_inject_three_moves_and_one_removal(self):
        lab = generate_lab_trace("T6", seed=1)
        assert len(lab.truth.changes) == 4
        removals = [c for c in lab.truth.changes if c.new_container is None]
        moves = [c for c in lab.truth.changes if c.new_container is not None]
        assert len(removals) == 1
        assert len(moves) == 3

    def test_removed_item_goes_away(self):
        lab = generate_lab_trace("T5", seed=2)
        removal = next(c for c in lab.truth.changes if c.new_container is None)
        assert lab.truth.location_at(removal.tag, removal.time + 1) == AWAY

    def test_population(self):
        lab = generate_lab_trace("T1", seed=0)
        assert len(lab.truth.cases()) == 20
        assert len(lab.truth.items()) == 100

    def test_lower_read_rate_fewer_readings(self):
        high = generate_lab_trace("T1", seed=3)  # RR 0.85
        low = generate_lab_trace("T3", seed=3)  # RR 0.70
        assert len(low.trace) < len(high.trace)
