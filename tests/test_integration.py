"""End-to-end integration: simulate → infer → query → score."""

import pytest

from repro.core.events import ObjectEvent, events_from_truth
from repro.core.service import ServiceConfig, StreamingInference
from repro.metrics.accuracy import service_containment_error, service_location_error
from repro.metrics.fmeasure import match_alerts
from repro.queries.q1 import FreezerExposureQuery
from repro.sim.sensors import SensorReading
from repro.streams.engine import StreamScheduler
from repro.workloads.scenarios import cold_chain_scenario


@pytest.fixture(scope="module")
def pipeline():
    scenario = cold_chain_scenario(seed=4, read_rate=0.9)
    service = StreamingInference(
        scenario.trace,
        ServiceConfig(
            run_interval=300,
            recent_history=600,
            truncation="cr",
            emit_events=True,
            event_period=5,
        ),
    )
    service.run_until(scenario.horizon)
    return scenario, service


class TestInferenceQuality(object):
    def test_containment_error_low(self, pipeline):
        scenario, service = pipeline
        err = service_containment_error(scenario.truth, service)
        assert err <= 0.25

    def test_location_error_low(self, pipeline):
        scenario, service = pipeline
        err = service_location_error(scenario.truth, service)
        assert err <= 0.10


class TestEndToEndQuery(object):
    def run_q1(self, events, scenario):
        query = FreezerExposureQuery(scenario.catalog, exposure_duration=300)
        scheduler = StreamScheduler()
        scheduler.route(ObjectEvent, query.on_event)
        scheduler.route(SensorReading, query.on_sensor)
        scheduler.run(events, scenario.sensor_stream(0))
        return query

    def test_inferred_alerts_score_against_truth(self, pipeline):
        scenario, service = pipeline
        truth_q1 = self.run_q1(
            events_from_truth(scenario.truth, scenario.horizon, period=5), scenario
        )
        inferred_q1 = self.run_q1(sorted(service.events, key=lambda e: e.time), scenario)
        # Alerts can lag ground truth by up to one inference interval
        # (300 epochs): events materialize at run boundaries.
        fm = match_alerts(
            inferred_q1.alert_pairs(), truth_q1.alert_pairs(), tolerance=310
        )
        assert truth_q1.alerts  # the scenario does produce exposures
        assert fm.f1 >= 0.6  # inferred stream reproduces most alerts

    def test_event_stream_nonempty_and_ordered(self, pipeline):
        _, service = pipeline
        times = [e.time for e in service.events]
        assert times
        assert times == sorted(times)
