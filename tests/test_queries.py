"""Tests for Q1, Q2, and the tracking query on ground-truth streams."""

import pytest

from repro.core.events import ObjectEvent, events_from_truth
from repro.queries.q1 import FreezerExposureQuery
from repro.queries.q2 import TemperatureExposureQuery
from repro.queries.tracking import PathDeviationQuery
from repro.sim.sensors import SensorReading
from repro.sim.tags import EPC, TagKind
from repro.streams.engine import StreamScheduler
from repro.workloads.catalog import ProductCatalog
from repro.workloads.scenarios import cold_chain_scenario


@pytest.fixture(scope="module")
def scenario():
    return cold_chain_scenario(seed=4)


def run_query(query, scenario):
    events = events_from_truth(scenario.truth, scenario.horizon, period=5)
    scheduler = StreamScheduler()
    scheduler.route(ObjectEvent, query.on_event)
    scheduler.route(SensorReading, query.on_sensor)
    scheduler.run(events, scenario.sensor_stream(0))
    return query


class TestQ1:
    def test_alerts_match_injected_exposures(self, scenario):
        q1 = run_query(FreezerExposureQuery(scenario.catalog, exposure_duration=300), scenario)
        expected = {tag for tag, _, back in scenario.exposures if back is None}
        assert {a.key for a in q1.alerts} == expected

    def test_short_exposures_do_not_alert(self, scenario):
        q1 = run_query(FreezerExposureQuery(scenario.catalog, exposure_duration=300), scenario)
        short = {tag for tag, _, back in scenario.exposures if back is not None}
        assert not ({a.key for a in q1.alerts} & short)

    def test_alert_carries_temperatures(self, scenario):
        q1 = run_query(FreezerExposureQuery(scenario.catalog, exposure_duration=300), scenario)
        for alert in q1.alerts:
            assert alert.values
            assert all(t > 0 for t in alert.values)  # room temperature readings

    def test_alert_timing(self, scenario):
        q1 = run_query(FreezerExposureQuery(scenario.catalog, exposure_duration=300), scenario)
        starts = {tag: t_out for tag, t_out, back in scenario.exposures if back is None}
        for alert in q1.alerts:
            assert alert.end_time == pytest.approx(starts[alert.key] + 300, abs=20)

    def test_state_export_round_trip(self, scenario):
        q1 = run_query(FreezerExposureQuery(scenario.catalog, exposure_duration=300), scenario)
        tag = next(iter(q1.active_states()))
        data = q1.export_state(tag)
        fresh = FreezerExposureQuery(scenario.catalog, exposure_duration=300)
        fresh.import_state(tag, data)
        assert fresh.pattern.state_of(tag).stage == q1.pattern.state_of(tag).stage


class TestQ2:
    def test_ignores_containment(self, scenario):
        """Q2 alerts on location/temperature only (§5.4)."""
        q2 = run_query(
            TemperatureExposureQuery(scenario.catalog, exposure_duration=400), scenario
        )
        expected = {tag for tag, _, back in scenario.exposures if back is None}
        assert {a.key for a in q2.alerts} == expected

    def test_threshold_respected(self, scenario):
        q2 = run_query(
            TemperatureExposureQuery(
                scenario.catalog, exposure_duration=400, temp_threshold=50.0
            ),
            scenario,
        )
        assert q2.alerts == []  # nothing in the warehouse exceeds 50 °C


class TestTracking:
    def test_on_route_object_never_alerts(self):
        tag = EPC(TagKind.CASE, 0)
        query = PathDeviationQuery({tag: (0, 1, 2)})
        for site, time in ((0, 0), (0, 5), (1, 10), (2, 20)):
            query.on_event(ObjectEvent(time, tag, site, 0, None))
        assert query.alerts == []
        assert query.path_of(tag) == [0, 1, 2]

    def test_deviation_detected_once(self):
        tag = EPC(TagKind.CASE, 0)
        query = PathDeviationQuery({tag: (0, 1, 2)})
        query.on_event(ObjectEvent(0, tag, 0, 0, None))
        query.on_event(ObjectEvent(5, tag, 3, 0, None))  # off route
        query.on_event(ObjectEvent(8, tag, 3, 0, None))
        assert len(query.alerts) == 1
        alert = query.alerts[0]
        assert alert.site == 3 and alert.time == 5

    def test_unmonitored_tags_ignored(self):
        query = PathDeviationQuery({})
        query.on_event(ObjectEvent(0, EPC(TagKind.CASE, 9), 5, 0, None))
        assert query.alerts == []


class TestEventsFromTruth:
    def test_period_and_sites(self, scenario):
        events = events_from_truth(scenario.truth, scenario.horizon, period=10)
        assert events
        assert all(e.time % 10 in range(10) for e in events)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_container_attribute_tracks_changes(self, scenario):
        tag, t_out, _ = scenario.exposures[1]
        events = events_from_truth(scenario.truth, scenario.horizon, period=1)
        before = [e for e in events if e.tag == tag and e.time == t_out - 1]
        after = [e for e in events if e.tag == tag and e.time == t_out + 1]
        assert before[0].container != after[0].container
